//! The skeleton: server-side representative of one pool member (paper §2.3).
//!
//! Beyond a classic Java RMI skeleton's unmarshal-dispatch-marshal duty, an
//! ElasticRMI skeleton also:
//!
//! * tracks per-method call statistics for the burst interval
//!   (`getMethodCallStats`),
//! * reports load (pending invocations, busy fraction, RAM, fine-grained
//!   vote) when the runtime polls it,
//! * obeys sentinel rebalance directives by redirecting a portion of
//!   incoming invocations to designated members, and
//! * executes the two-phase shutdown drain of §2.5: finish what is pending,
//!   redirect everything newer, then acknowledge readiness.
//!
//! Request intake and execution are split into two halves: [`Skeleton::ingest`]
//! runs the admission decision (shed, reject expired, refuse `Overloaded`, or
//! enqueue into the bounded [`AdmissionQueue`]) and [`Skeleton::step`] executes
//! one admitted request per the configured discipline, culling anything whose
//! deadline expired while queued. The event loop batch-drains the mailbox
//! through `ingest` before stepping, so under a burst the queue bound and
//! EDF ordering apply across the whole backlog rather than one message at a
//! time.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use erm_admission::{suggest_retry_after, AdmissionConfig, AdmissionQueue, RejectReason};
use erm_metrics::{
    AdmissionCounters, AdmissionStats, Counter, Gauge, Histogram, LatencyTracker, MetricsHandle,
    TraceEvent, TraceHandle,
};
use erm_semantics::{DedupStats, Lookup, ReplyCache, ReplyCacheConfig, Semantics};
use erm_sim::{SharedClock, SimDuration, SimTime};
use erm_transport::{Datagram, EndpointId, Mailbox, Network, RecvError};

use crate::api::{ElasticService, MethodCallStats, ServiceContext};
use crate::error::RemoteError;
use crate::message::{InvocationContext, LoadReport, MemberState, MethodStat, RmiMessage};

/// How long the receive loop blocks before re-checking control state.
const POLL_TICK: Duration = Duration::from_millis(5);

/// An admitted invocation waiting in the run queue.
#[derive(Debug, Clone)]
struct QueuedRequest {
    from: EndpointId,
    call: u64,
    context: InvocationContext,
    method: String,
    args: Vec<u8>,
}

#[derive(Debug, Default)]
struct IntervalStats {
    methods: HashMap<String, (u64, u64)>, // (calls, total latency µs)
    busy_micros: u64,
    expired: u32,
    rejected: u32,
    queue_delay: LatencyTracker,
    started_at: Option<SimTime>,
}

impl IntervalStats {
    fn record(&mut self, method: &str, latency_us: u64) {
        let entry = self.methods.entry(method.to_string()).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += latency_us;
        self.busy_micros += latency_us;
    }

    fn snapshot(&self) -> Vec<(String, MethodStat)> {
        self.methods
            .iter()
            .map(|(name, &(calls, total))| {
                (
                    name.clone(),
                    MethodStat {
                        calls,
                        mean_latency_us: (total / calls.max(1)),
                    },
                )
            })
            .collect()
    }
}

/// Runs one pool member: the skeleton event loop plus the hosted service.
///
/// Created by the pool runtime, one per granted slice, each on its own
/// thread. Public only for integration tests and custom runtimes; normal use
/// goes through `ElasticPool`.
pub struct Skeleton {
    uid: u64,
    endpoint: EndpointId,
    runtime_ctl: EndpointId,
    net: Arc<dyn Network>,
    clock: SharedClock,
    service: Box<dyn ElasticService>,
    ctx: ServiceContext,
    // Control state.
    epoch: u64,
    sentinel_uid: u64,
    members: Vec<MemberState>,
    draining: bool,
    finished: bool,
    drain_budget: usize,
    redirect_quota: Vec<(EndpointId, u32)>,
    interval: IntervalStats,
    served_since_start: u64,
    trace: TraceHandle,
    queue: AdmissionQueue<QueuedRequest>,
    counters: Arc<AdmissionCounters>,
    /// Duplicate-suppression cache for `AtMostOnce` methods (wire v4),
    /// consulted *before* admission so suppressed attempts never occupy a
    /// run-queue slot.
    reply_cache: ReplyCache<Result<Vec<u8>, RemoteError>>,
    /// Last cache stats published to the shared metrics instruments; the
    /// diff is what gets added, so pool members aggregate correctly.
    published_dedup: DedupStats,
    published_cache_len: usize,
    // Registry instruments; disabled (no-op) unless `set_metrics` was called.
    queue_delay_hist: Histogram,
    service_time_hist: Histogram,
    dedup_hits: Counter,
    dedup_replayed: Counter,
    dedup_evicted: Counter,
    dedup_size: Gauge,
}

impl Skeleton {
    /// Assembles a skeleton for member `uid` listening on `endpoint`.
    /// `admission` bounds the run queue; `None` keeps the legacy unbounded
    /// FIFO behaviour (no `Overloaded` rejections).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        uid: u64,
        endpoint: EndpointId,
        runtime_ctl: EndpointId,
        net: Arc<dyn Network>,
        clock: SharedClock,
        service: Box<dyn ElasticService>,
        ctx: ServiceContext,
        trace: TraceHandle,
        admission: Option<AdmissionConfig>,
    ) -> Self {
        Skeleton {
            uid,
            endpoint,
            runtime_ctl,
            net,
            clock,
            service,
            ctx,
            trace,
            epoch: 0,
            sentinel_uid: uid,
            members: Vec::new(),
            draining: false,
            finished: false,
            drain_budget: 0,
            redirect_quota: Vec::new(),
            interval: IntervalStats::default(),
            served_since_start: 0,
            queue: admission.map_or_else(AdmissionQueue::unbounded_fifo, AdmissionQueue::new),
            counters: Arc::new(AdmissionCounters::new()),
            reply_cache: ReplyCache::new(ReplyCacheConfig::default()),
            published_dedup: DedupStats::default(),
            published_cache_len: 0,
            queue_delay_hist: Histogram::disabled(),
            service_time_hist: Histogram::disabled(),
            dedup_hits: Counter::disabled(),
            dedup_replayed: Counter::disabled(),
            dedup_evicted: Counter::disabled(),
            dedup_size: Gauge::disabled(),
        }
    }

    /// Replaces the reply-cache tuning (grace window, entry/byte caps).
    /// Call before the skeleton starts serving; swapping the cache mid-run
    /// would forget in-flight suppression state.
    pub fn set_reply_cache(&mut self, config: ReplyCacheConfig) {
        self.reply_cache = ReplyCache::new(config);
    }

    /// Registers this skeleton's instruments (`skeleton.queue.delay`,
    /// `skeleton.service.time`) on `metrics`. All pool members share the
    /// same named histograms, so the registry aggregates across the pool.
    pub fn set_metrics(&mut self, metrics: &MetricsHandle) {
        self.queue_delay_hist = metrics.histogram("skeleton.queue.delay");
        self.service_time_hist = metrics.histogram("skeleton.service.time");
        // Duplicate-suppression instruments (wire v4). Registered eagerly so
        // they appear in CSV exports even before the first suppression; the
        // gauge is updated by deltas so it sums across pool members.
        self.dedup_hits = metrics.counter("rmi.dedup.hits");
        self.dedup_replayed = metrics.counter("rmi.dedup.replayed");
        self.dedup_evicted = metrics.counter("rmi.dedup.evicted");
        self.dedup_size = metrics.gauge("rmi.dedup.cache.size");
    }

    /// This member's uid.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Total requests served since start (used in tests).
    pub fn served(&self) -> u64 {
        self.served_since_start
    }

    /// Requests currently admitted and waiting in the run queue.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Admission decisions taken since start.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.counters.snapshot()
    }

    /// Duplicate-suppression counters for this member's reply cache.
    pub fn dedup_stats(&self) -> DedupStats {
        self.reply_cache.stats()
    }

    /// Live reply-cache entries (in-progress + completed).
    pub fn reply_cache_len(&self) -> usize {
        self.reply_cache.len()
    }

    /// Runs a deterministic TTL sweep at the current sim time and returns
    /// the live entries left. Harnesses call this at quiesce to prove the
    /// cache drains to zero once every deadline (+ grace) has passed.
    pub fn sweep_reply_cache(&mut self) -> usize {
        let now = self.clock.now();
        self.reply_cache.expire(now);
        self.sync_dedup_metrics();
        self.reply_cache.len()
    }

    /// Publishes the diff between the cache's internal counters and what was
    /// last pushed to the shared metrics instruments.
    fn sync_dedup_metrics(&mut self) {
        let s = self.reply_cache.stats();
        self.dedup_hits.add(s.hits - self.published_dedup.hits);
        self.dedup_replayed
            .add(s.replayed - self.published_dedup.replayed);
        self.dedup_evicted
            .add(s.evicted - self.published_dedup.evicted);
        self.published_dedup = s;
        let len = self.reply_cache.len();
        self.dedup_size
            .add(len as i64 - self.published_cache_len as i64);
        self.published_cache_len = len;
    }

    /// Runs the event loop until shutdown completes or the mailbox closes.
    /// This is the thread body of a pool member.
    pub fn run(mut self, mailbox: Mailbox) {
        self.service.on_start(&mut self.ctx);
        self.interval.started_at = Some(self.clock.now());
        loop {
            match mailbox.recv_timeout(POLL_TICK) {
                Ok(datagram) => {
                    let mut exit = self.ingest_datagram(datagram, &mailbox);
                    // Batch-drain every queued arrival before executing, so
                    // the admission bound and run-queue discipline apply
                    // across the whole backlog of a burst.
                    while let Ok(d) = mailbox.try_recv() {
                        exit |= self.ingest_datagram(d, &mailbox);
                    }
                    while self.step() {}
                    if exit || self.finished {
                        break;
                    }
                }
                Err(RecvError::Timeout) => {
                    while self.step() {}
                    if self.finished {
                        break;
                    }
                    if self.draining && mailbox.is_empty() && self.queue.is_empty() {
                        // Drained with no pending work: finish shutdown.
                        self.finish_shutdown();
                        break;
                    }
                }
                Err(RecvError::Closed) => break,
            }
        }
    }

    fn ingest_datagram(&mut self, datagram: Datagram, mailbox: &Mailbox) -> bool {
        match RmiMessage::decode(&datagram.payload) {
            Ok(msg) => self.ingest(datagram.from, msg, mailbox),
            Err(_) => false, // malformed datagrams are dropped
        }
    }

    /// Handles one message to completion: admits it via [`Skeleton::ingest`]
    /// and then pumps [`Skeleton::step`] until the run queue is empty.
    /// Returns `true` when the skeleton should exit. Exposed for
    /// deterministic unit tests.
    pub fn handle(&mut self, from: EndpointId, msg: RmiMessage, mailbox: &Mailbox) -> bool {
        let exit = self.ingest(from, msg, mailbox);
        while self.step() {}
        exit || self.finished
    }

    /// The intake half of the skeleton: control messages are applied
    /// immediately; a `Request` gets its admission decision (drain
    /// redirect, rebalance shed, expired rejection, `Overloaded` refusal,
    /// or enqueue) but is **not** executed. Returns `true` when the
    /// skeleton should exit.
    pub fn ingest(&mut self, from: EndpointId, msg: RmiMessage, mailbox: &Mailbox) -> bool {
        match msg {
            RmiMessage::Request {
                call,
                context,
                method,
                args,
            } => {
                self.on_request(from, call, context, method, args);
                self.finished
            }
            RmiMessage::PoolInfoRequest => {
                let members: Vec<EndpointId> = self.members.iter().map(|m| m.endpoint).collect();
                let sentinel = self
                    .members
                    .iter()
                    .find(|m| m.uid == self.sentinel_uid)
                    .map_or(self.endpoint, |m| m.endpoint);
                self.send(
                    from,
                    RmiMessage::PoolInfo {
                        epoch: self.epoch,
                        sentinel,
                        members,
                    },
                );
                false
            }
            RmiMessage::PollLoad => {
                // Pending = undrained mailbox plus *live* queued work;
                // deadline-expired entries are excluded so the sentinel's
                // redirect planner never moves dead work.
                let pending = mailbox.len() as u32 + self.queue.live_len(self.clock.now());
                let report = self.make_load_report(pending);
                self.send(from, RmiMessage::Load(report));
                false
            }
            RmiMessage::StateBroadcast {
                epoch,
                sentinel_uid,
                members,
            } => {
                if epoch >= self.epoch {
                    self.epoch = epoch;
                    self.sentinel_uid = sentinel_uid;
                    self.members = members;
                    // Scope the reply cache to the membership epoch: entries
                    // stay valid (the at-most-once contract is per
                    // invocation), but carryover across re-elections is
                    // counted so churn-era suppression stays observable.
                    self.reply_cache.set_epoch(epoch);
                }
                false
            }
            RmiMessage::Rebalance { to, count } => {
                self.redirect_quota.push((to, count));
                false
            }
            RmiMessage::Shutdown => {
                // §2.5: acknowledge, finish pending invocations (those
                // already queued in the mailbox or admitted to the run
                // queue), then notify readiness.
                self.draining = true;
                // Budget covers requests still in the mailbox (they pass
                // through `on_request` on arrival); work already admitted to
                // the run queue executes via `step` without consuming it.
                self.drain_budget = mailbox.len();
                if self.drain_budget == 0 && self.queue.is_empty() {
                    self.finish_shutdown();
                    return true;
                }
                false
            }
            RmiMessage::Ping => {
                self.send(from, RmiMessage::Pong);
                false
            }
            // Messages a skeleton never consumes.
            RmiMessage::Response { .. }
            | RmiMessage::Redirected { .. }
            | RmiMessage::Overloaded { .. }
            | RmiMessage::PoolInfo { .. }
            | RmiMessage::Load(_)
            | RmiMessage::ShutdownReady { .. }
            | RmiMessage::Pong => false,
        }
    }

    fn on_request(
        &mut self,
        from: EndpointId,
        call: u64,
        context: InvocationContext,
        method: String,
        args: Vec<u8>,
    ) {
        let now = self.clock.now();
        // TTL sweep first so a dead entry can never shadow live work, then
        // the duplicate check — *before* any admission decision, so a
        // suppressed attempt never occupies a run-queue slot and a draining
        // member replays cached replies instead of redirecting duplicates.
        self.reply_cache.expire(now);
        if context.semantics == Semantics::AtMostOnce {
            match self
                .reply_cache
                .lookup(context.origin, context.id, from, call, now)
            {
                Lookup::Miss => self.sync_dedup_metrics(),
                Lookup::Parked => {
                    // A duplicate of an in-flight invocation: merged into
                    // the first execution, answered when it completes.
                    self.sync_dedup_metrics();
                    return;
                }
                Lookup::Replay(outcome) => {
                    self.sync_dedup_metrics();
                    self.send(
                        from,
                        RmiMessage::Response {
                            call,
                            outcome,
                            replayed: true,
                        },
                    );
                    return;
                }
            }
        }
        let request = QueuedRequest {
            from,
            call,
            context,
            method,
            args,
        };
        if self.draining {
            if self.drain_budget > 0 {
                // Pending at shutdown time: still executed (§2.5), so it
                // bypasses the capacity check — but not the deadline.
                self.drain_budget -= 1;
                match self.queue.force(now, context.deadline, request) {
                    Ok(_) => self.begin_dedup(&context),
                    Err(rejected) => self.reject_expired(now, rejected.item, rejected.reason),
                }
            } else {
                self.counters.shed();
                self.redirect(from, call, &context);
            }
            return;
        }
        if let Some(target) = self.take_redirect_quota() {
            // Sentinel told us to shed a portion of incoming invocations.
            self.counters.shed();
            self.trace.emit(
                now,
                TraceEvent::RequestShed {
                    uid: self.uid,
                    invocation: context.id,
                },
            );
            self.send(
                from,
                RmiMessage::Redirected {
                    call,
                    members: vec![target],
                    deadline: context.deadline,
                },
            );
            return;
        }
        match self.queue.offer(now, context.deadline, request) {
            Ok(depth) => {
                self.counters.admit();
                self.begin_dedup(&context);
                self.trace.emit(
                    now,
                    TraceEvent::RequestAdmitted {
                        uid: self.uid,
                        invocation: context.id,
                        depth,
                    },
                );
            }
            Err(rejected) => match rejected.reason {
                RejectReason::Expired { .. } => {
                    self.reject_expired(now, rejected.item, rejected.reason);
                }
                RejectReason::QueueFull { depth } => {
                    // Refuse *before* queueing: an early, explicit rejection
                    // with a retry hint beats letting the request die by
                    // deadline behind a full queue.
                    self.interval.rejected += 1;
                    self.counters.reject();
                    let retry_after = suggest_retry_after(depth, self.mean_service());
                    self.trace.emit(
                        now,
                        TraceEvent::RequestOverloaded {
                            uid: self.uid,
                            invocation: context.id,
                            queue_depth: depth,
                            retry_after,
                        },
                    );
                    self.send(
                        from,
                        RmiMessage::Overloaded {
                            call,
                            queue_depth: depth,
                            retry_after,
                        },
                    );
                }
            },
        }
    }

    /// Executes at most one admitted request: culls (and answers) every
    /// queued entry whose deadline passed, then pops the next runnable one
    /// per the discipline and dispatches it. Returns `true` if any work was
    /// done (a cull or a dispatch), `false` when the queue is idle.
    pub fn step(&mut self) -> bool {
        let now = self.clock.now();
        let culled = self.queue.cull(now);
        let did_work = !culled.is_empty();
        for dead in culled {
            let late_by = now.saturating_since(dead.deadline);
            self.interval.expired += 1;
            self.counters.cull();
            self.trace.emit(
                now,
                TraceEvent::RequestExpired {
                    uid: self.uid,
                    invocation: dead.item.context.id,
                    late_by,
                },
            );
            let outcome = Err(RemoteError::deadline_exceeded(&dead.item.method, late_by));
            // The invocation died unexecuted: drop its in-progress cache
            // entry (a fresh retry would be legal — it just can't beat the
            // deadline) and give every parked duplicate the same failure.
            if dead.item.context.semantics == Semantics::AtMostOnce {
                let waiters = self
                    .reply_cache
                    .abort(dead.item.context.origin, dead.item.context.id);
                for w in waiters {
                    self.send(
                        w.from,
                        RmiMessage::Response {
                            call: w.call,
                            outcome: outcome.clone(),
                            replayed: true,
                        },
                    );
                }
                self.sync_dedup_metrics();
            }
            self.send(
                dead.item.from,
                RmiMessage::Response {
                    call: dead.item.call,
                    outcome,
                    replayed: false,
                },
            );
        }
        let Some(admitted) = self.queue.pop(now) else {
            if did_work {
                self.check_drain_done();
            }
            return did_work;
        };
        self.interval.queue_delay.observe(admitted.queue_delay);
        self.queue_delay_hist.record(admitted.queue_delay);
        let request = admitted.item;
        let start = self.clock.now();
        self.ctx.set_invocation(Some(request.context));
        let outcome = self
            .service
            .dispatch(&request.method, &request.args, &mut self.ctx);
        self.ctx.set_invocation(None);
        let end = self.clock.now();
        let latency = end.saturating_since(start);
        self.interval.record(&request.method, latency.as_micros());
        self.service_time_hist.record(latency);
        self.served_since_start += 1;
        // Server-side span anchor: lets trace consumers reconstruct the
        // queue-wait and execute children of this attempt.
        self.trace.emit(
            end,
            TraceEvent::RequestExecuted {
                uid: self.uid,
                invocation: request.context.id,
                queued_for: admitted.queue_delay,
                ran_for: latency,
            },
        );
        if request.context.semantics == Semantics::AtMostOnce {
            // Cache the reply for future duplicates (charged by payload
            // size) and answer every attempt that parked while it ran.
            let bytes = outcome.as_ref().map_or(0, Vec::len);
            let waiters = self.reply_cache.complete(
                request.context.origin,
                request.context.id,
                outcome.clone(),
                bytes,
            );
            for w in waiters {
                self.send(
                    w.from,
                    RmiMessage::Response {
                        call: w.call,
                        outcome: outcome.clone(),
                        replayed: true,
                    },
                );
            }
            self.sync_dedup_metrics();
        }
        self.send(
            request.from,
            RmiMessage::Response {
                call: request.call,
                outcome,
                replayed: false,
            },
        );
        self.check_drain_done();
        true
    }

    /// Records an admitted `AtMostOnce` invocation as in flight. Called only
    /// after admission accepted the request — an entry for a rejected
    /// attempt would blackhole legitimate retries until its TTL.
    fn begin_dedup(&mut self, context: &InvocationContext) {
        if context.semantics == Semantics::AtMostOnce {
            self.reply_cache
                .begin(context.origin, context.id, context.deadline);
            self.sync_dedup_metrics();
        }
    }

    fn reject_expired(&mut self, now: SimTime, request: QueuedRequest, reason: RejectReason) {
        let late_by = match reason {
            RejectReason::Expired { late_by } => late_by,
            RejectReason::QueueFull { .. } => now.saturating_since(request.context.deadline),
        };
        self.interval.expired += 1;
        self.trace.emit(
            now,
            TraceEvent::RequestExpired {
                uid: self.uid,
                invocation: request.context.id,
                late_by,
            },
        );
        self.send(
            request.from,
            RmiMessage::Response {
                call: request.call,
                outcome: Err(RemoteError::deadline_exceeded(&request.method, late_by)),
                replayed: false,
            },
        );
        self.check_drain_done();
    }

    fn check_drain_done(&mut self) {
        if self.draining && self.drain_budget == 0 && self.queue.is_empty() {
            self.finish_shutdown();
        }
    }

    /// Mean service latency over the current burst interval, used to size
    /// `Overloaded` retry hints.
    fn mean_service(&self) -> SimDuration {
        let calls: u64 = self.interval.methods.values().map(|&(c, _)| c).sum();
        self.interval
            .busy_micros
            .checked_div(calls)
            .map_or(SimDuration::ZERO, SimDuration::from_micros)
    }

    fn take_redirect_quota(&mut self) -> Option<EndpointId> {
        let (target, remaining) = self.redirect_quota.first_mut().map(|(t, c)| {
            *c -= 1;
            (*t, *c)
        })?;
        if remaining == 0 {
            self.redirect_quota.remove(0);
        }
        Some(target)
    }

    fn redirect(&mut self, from: EndpointId, call: u64, context: &InvocationContext) {
        self.trace.emit(
            self.clock.now(),
            TraceEvent::RequestShed {
                uid: self.uid,
                invocation: context.id,
            },
        );
        let members: Vec<EndpointId> = self
            .members
            .iter()
            .filter(|m| m.uid != self.uid)
            .map(|m| m.endpoint)
            .collect();
        // Echo the deadline so the follow-up attempt runs under the
        // remaining budget, never a fresh one.
        self.send(
            from,
            RmiMessage::Redirected {
                call,
                members,
                deadline: context.deadline,
            },
        );
    }

    fn make_load_report(&mut self, pending: u32) -> LoadReport {
        let now = self.clock.now();
        let elapsed = self
            .interval
            .started_at
            .map_or(erm_sim::SimDuration::ZERO, |t| now.saturating_since(t));
        let busy = if elapsed.is_zero() {
            0.0
        } else {
            (self.interval.busy_micros as f64 / elapsed.as_micros() as f64 * 100.0).min(100.0)
                as f32
        };
        let stats_vec = self.interval.snapshot();
        let stats = MethodCallStats::new(elapsed, stats_vec.iter().cloned().collect())
            .with_expired(self.interval.expired);
        let vote = self.service.change_pool_size(&stats, &mut self.ctx);
        let report = LoadReport {
            uid: self.uid,
            pending,
            busy,
            ram: self.service.ram_utilization(),
            fine_vote: Some(vote),
            expired: self.interval.expired,
            method_stats: stats_vec,
            rejected: self.interval.rejected,
            queue_delay_p50_us: self
                .interval
                .queue_delay
                .quantile(0.5)
                .map_or(0, SimDuration::as_micros),
            queue_delay_p99_us: self
                .interval
                .queue_delay
                .quantile(0.99)
                .map_or(0, SimDuration::as_micros),
        };
        // Burst interval rolls over after each poll.
        self.interval = IntervalStats {
            started_at: Some(now),
            ..IntervalStats::default()
        };
        report
    }

    fn finish_shutdown(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.service.on_shutdown(&mut self.ctx);
        self.send(
            self.runtime_ctl,
            RmiMessage::ShutdownReady { uid: self.uid },
        );
    }

    fn send(&self, to: EndpointId, msg: RmiMessage) {
        let _ = self.net.send(self.endpoint, to, msg.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::decode_args;
    use crate::error::RemoteError;
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::VirtualClock;
    use erm_transport::{Host, InProcNetwork};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// Echo service: returns its argument; "fail" raises a remote error.
    struct Echo;
    impl ElasticService for Echo {
        fn dispatch(
            &mut self,
            method: &str,
            args: &[u8],
            _ctx: &mut ServiceContext,
        ) -> Result<Vec<u8>, RemoteError> {
            match method {
                "echo" => {
                    let s: String = decode_args(method, args)?;
                    crate::api::encode_result(&s)
                }
                "fail" => Err(RemoteError::new("AppError", "requested failure")),
                other => Err(RemoteError::no_such_method(other)),
            }
        }
        fn ram_utilization(&self) -> f32 {
            37.5
        }
    }

    /// Non-idempotent service: every dispatch increments a shared counter
    /// and returns the post-increment value, so a duplicate execution is
    /// visible both in the counter and in the divergent reply payloads.
    struct CountingService {
        executions: Arc<AtomicU32>,
    }
    impl ElasticService for CountingService {
        fn dispatch(
            &mut self,
            _method: &str,
            _args: &[u8],
            _ctx: &mut ServiceContext,
        ) -> Result<Vec<u8>, RemoteError> {
            let n = self.executions.fetch_add(1, Ordering::SeqCst) + 1;
            crate::api::encode_result(&n)
        }
    }

    struct Rig {
        net: InProcNetwork,
        clock: Arc<VirtualClock>,
        skeleton: Skeleton,
        skeleton_mailbox: Mailbox,
        client: EndpointId,
        client_mailbox: Mailbox,
        runtime: EndpointId,
        runtime_mailbox: Mailbox,
    }

    fn rig() -> Rig {
        rig_with_admission(None)
    }

    fn rig_with_admission(admission: Option<AdmissionConfig>) -> Rig {
        rig_with_service(admission, Box::new(Echo))
    }

    fn rig_with_service(
        admission: Option<AdmissionConfig>,
        service: Box<dyn ElasticService>,
    ) -> Rig {
        let net = InProcNetwork::new();
        let (skel_ep, skel_mb) = net.open();
        let (client, client_mb) = net.open();
        let (runtime, runtime_mb) = net.open();
        let clock = Arc::new(VirtualClock::new());
        let store = Arc::new(Store::new(StoreConfig::default()));
        let ctx = ServiceContext::new(
            store,
            "Echo",
            0,
            Arc::<VirtualClock>::clone(&clock) as SharedClock,
            Arc::new(AtomicU32::new(1)),
        );
        let skeleton = Skeleton::new(
            0,
            skel_ep,
            runtime,
            Arc::new(net.clone()),
            Arc::<VirtualClock>::clone(&clock) as SharedClock,
            service,
            ctx,
            TraceHandle::disabled(),
            admission,
        );
        Rig {
            net,
            clock,
            skeleton,
            skeleton_mailbox: skel_mb,
            client,
            client_mailbox: client_mb,
            runtime,
            runtime_mailbox: runtime_mb,
        }
    }

    fn recv(mb: &Mailbox) -> RmiMessage {
        RmiMessage::decode(&mb.try_recv().expect("message expected").payload).unwrap()
    }

    /// A context with plenty of budget left on the rig's virtual clock.
    fn live_ctx(id: u64) -> InvocationContext {
        InvocationContext {
            semantics: Semantics::AtLeastOnce,
            id,
            deadline: SimTime::from_secs(1_000),
            attempt: 1,
            origin: EndpointId(500),
        }
    }

    #[test]
    fn dispatches_and_responds() {
        let mut r = rig();
        let args = erm_transport::to_bytes(&"hi".to_string()).unwrap();
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 1,
                context: live_ctx(1),
                method: "echo".into(),
                args,
            },
            &r.skeleton_mailbox,
        );
        match recv(&r.client_mailbox) {
            RmiMessage::Response {
                replayed: _,
                call: 1,
                outcome: Ok(bytes),
            } => {
                let s: String = erm_transport::from_bytes(&bytes).unwrap();
                assert_eq!(s, "hi");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.skeleton.served(), 1);
    }

    #[test]
    fn remote_errors_propagate() {
        let mut r = rig();
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 2,
                context: live_ctx(2),
                method: "fail".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        match recv(&r.client_mailbox) {
            RmiMessage::Response {
                replayed: _,
                call: 2,
                outcome: Err(e),
            } => assert_eq!(e.kind, "AppError"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_method_is_remote_error() {
        let mut r = rig();
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 3,
                context: live_ctx(3),
                method: "nope".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        match recv(&r.client_mailbox) {
            RmiMessage::Response {
                outcome: Err(e), ..
            } => assert_eq!(e.kind, "NoSuchMethod"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dropped_reply_retry_executes_twice_without_protection() {
        // The failing half of the duplicate-execution repro: a lost reply
        // makes the stub retransmit, and under the default `AtLeastOnce`
        // contract the skeleton happily runs the method again — one
        // invocation, two executions, divergent replies.
        let executions = Arc::new(AtomicU32::new(0));
        let mut r = rig_with_service(
            None,
            Box::new(CountingService {
                executions: Arc::clone(&executions),
            }),
        );
        let mut ctx = live_ctx(1);
        assert_eq!(ctx.semantics, Semantics::AtLeastOnce);
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 1,
                context: ctx,
                method: "incr".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        // The network "drops" the first reply; the stub's retry arrives with
        // the same invocation id and a bumped attempt counter.
        let _lost = recv(&r.client_mailbox);
        ctx.attempt = 2;
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 2,
                context: ctx,
                method: "incr".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        match recv(&r.client_mailbox) {
            RmiMessage::Response {
                call: 2,
                outcome: Ok(bytes),
                replayed: false,
            } => {
                let n: u32 = erm_transport::from_bytes(&bytes).unwrap();
                assert_eq!(n, 2, "retry observed the second execution");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            executions.load(Ordering::SeqCst),
            2,
            "unprotected retry re-executed the non-idempotent method"
        );
    }

    #[test]
    fn at_most_once_suppresses_duplicate_and_replays_cached_reply() {
        // The fixed half: the same dropped-reply scenario under `AtMostOnce`
        // executes once; the duplicate is answered from the reply cache with
        // a byte-identical payload and the `replayed` flag set.
        let executions = Arc::new(AtomicU32::new(0));
        let mut r = rig_with_service(
            None,
            Box::new(CountingService {
                executions: Arc::clone(&executions),
            }),
        );
        let mut ctx = live_ctx(1);
        ctx.semantics = Semantics::AtMostOnce;
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 1,
                context: ctx,
                method: "incr".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        let first = match recv(&r.client_mailbox) {
            RmiMessage::Response {
                call: 1,
                outcome: Ok(bytes),
                replayed: false,
            } => bytes,
            other => panic!("unexpected {other:?}"),
        };
        ctx.attempt = 2;
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 2,
                context: ctx,
                method: "incr".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        match recv(&r.client_mailbox) {
            RmiMessage::Response {
                call: 2,
                outcome: Ok(bytes),
                replayed: true,
            } => assert_eq!(bytes, first, "replay must be byte-identical"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(executions.load(Ordering::SeqCst), 1, "executed once");
        let stats = r.skeleton.dedup_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.replayed, 1);
    }

    #[test]
    fn duplicate_of_in_flight_invocation_parks_and_merges() {
        // A duplicate arriving while the first attempt is still queued must
        // not enter the run queue; it parks on the in-progress entry and is
        // answered when the single execution completes.
        let executions = Arc::new(AtomicU32::new(0));
        let mut r = rig_with_service(
            None,
            Box::new(CountingService {
                executions: Arc::clone(&executions),
            }),
        );
        let mut ctx = live_ctx(1);
        ctx.semantics = Semantics::AtMostOnce;
        // Ingest both attempts before stepping: the first is admitted, the
        // second parks.
        r.skeleton.ingest(
            r.client,
            RmiMessage::Request {
                call: 1,
                context: ctx,
                method: "incr".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        ctx.attempt = 2;
        r.skeleton.ingest(
            r.client,
            RmiMessage::Request {
                call: 2,
                context: ctx,
                method: "incr".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        assert!(
            r.client_mailbox.try_recv().is_err(),
            "parked duplicate must not be answered before execution"
        );
        while r.skeleton.step() {}
        let mut replies = std::collections::BTreeMap::new();
        while let Ok(d) = r.client_mailbox.try_recv() {
            match RmiMessage::decode(&d.payload).unwrap() {
                RmiMessage::Response {
                    call,
                    outcome: Ok(bytes),
                    replayed,
                } => {
                    replies.insert(call, (bytes, replayed));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(executions.load(Ordering::SeqCst), 1, "merged, not re-run");
        assert_eq!(replies.len(), 2, "both attempts answered");
        assert_eq!(replies[&1].0, replies[&2].0, "identical payloads");
        assert!(!replies[&1].1, "original reply is not a replay");
        assert!(replies[&2].1, "parked duplicate is flagged as replayed");
        assert_eq!(r.skeleton.dedup_stats().parked, 1);
    }

    #[test]
    fn poll_load_reports_and_resets_interval() {
        let mut r = rig();
        let args = erm_transport::to_bytes(&"x".to_string()).unwrap();
        for call in 0..5 {
            r.skeleton.handle(
                r.client,
                RmiMessage::Request {
                    call,
                    context: live_ctx(call),
                    method: "echo".into(),
                    args: args.clone(),
                },
                &r.skeleton_mailbox,
            );
        }
        while r.client_mailbox.try_recv().is_ok() {}
        r.skeleton
            .handle(r.runtime, RmiMessage::PollLoad, &r.skeleton_mailbox);
        match recv(&r.runtime_mailbox) {
            RmiMessage::Load(report) => {
                assert_eq!(report.uid, 0);
                assert_eq!(report.ram, 37.5);
                assert_eq!(report.fine_vote, Some(0));
                let echo = report
                    .method_stats
                    .iter()
                    .find(|(m, _)| m == "echo")
                    .expect("echo stats");
                assert_eq!(echo.1.calls, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Second poll: interval was reset.
        r.skeleton
            .handle(r.runtime, RmiMessage::PollLoad, &r.skeleton_mailbox);
        match recv(&r.runtime_mailbox) {
            RmiMessage::Load(report) => assert!(report.method_stats.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn state_broadcast_updates_membership_and_pool_info() {
        let mut r = rig();
        let members = vec![
            MemberState {
                endpoint: EndpointId(90),
                uid: 0,
                pending: 0,
            },
            MemberState {
                endpoint: EndpointId(91),
                uid: 1,
                pending: 2,
            },
        ];
        r.skeleton.handle(
            r.runtime,
            RmiMessage::StateBroadcast {
                epoch: 4,
                sentinel_uid: 0,
                members: members.clone(),
            },
            &r.skeleton_mailbox,
        );
        r.skeleton
            .handle(r.client, RmiMessage::PoolInfoRequest, &r.skeleton_mailbox);
        match recv(&r.client_mailbox) {
            RmiMessage::PoolInfo {
                epoch,
                sentinel,
                members,
            } => {
                assert_eq!(epoch, 4);
                assert_eq!(sentinel, EndpointId(90));
                assert_eq!(members, vec![EndpointId(90), EndpointId(91)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stale_broadcast_is_ignored() {
        let mut r = rig();
        r.skeleton.handle(
            r.runtime,
            RmiMessage::StateBroadcast {
                epoch: 5,
                sentinel_uid: 1,
                members: vec![],
            },
            &r.skeleton_mailbox,
        );
        r.skeleton.handle(
            r.runtime,
            RmiMessage::StateBroadcast {
                epoch: 3,
                sentinel_uid: 9,
                members: vec![MemberState {
                    endpoint: EndpointId(1),
                    uid: 9,
                    pending: 0,
                }],
            },
            &r.skeleton_mailbox,
        );
        r.skeleton
            .handle(r.client, RmiMessage::PoolInfoRequest, &r.skeleton_mailbox);
        match recv(&r.client_mailbox) {
            RmiMessage::PoolInfo { epoch, members, .. } => {
                assert_eq!(epoch, 5);
                assert!(members.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rebalance_redirects_the_requested_count() {
        let mut r = rig();
        r.skeleton.handle(
            r.runtime,
            RmiMessage::Rebalance {
                to: EndpointId(77),
                count: 2,
            },
            &r.skeleton_mailbox,
        );
        let args = erm_transport::to_bytes(&"x".to_string()).unwrap();
        let mut redirects = 0;
        let mut responses = 0;
        for call in 0..4 {
            r.skeleton.handle(
                r.client,
                RmiMessage::Request {
                    call,
                    context: live_ctx(call),
                    method: "echo".into(),
                    args: args.clone(),
                },
                &r.skeleton_mailbox,
            );
            match recv(&r.client_mailbox) {
                RmiMessage::Redirected { members, .. } => {
                    assert_eq!(members, vec![EndpointId(77)]);
                    redirects += 1;
                }
                RmiMessage::Response { .. } => responses += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(redirects, 2, "exactly the rebalance count is shed");
        assert_eq!(responses, 2);
    }

    #[test]
    fn shutdown_with_empty_queue_acks_immediately() {
        let mut r = rig();
        let done = r
            .skeleton
            .handle(r.runtime, RmiMessage::Shutdown, &r.skeleton_mailbox);
        assert!(done);
        match recv(&r.runtime_mailbox) {
            RmiMessage::ShutdownReady { uid } => assert_eq!(uid, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shutdown_finishes_pending_then_redirects_new() {
        let mut r = rig();
        let args = erm_transport::to_bytes(&"x".to_string()).unwrap();
        // Two requests already queued in the mailbox at shutdown time.
        for call in [10, 11] {
            r.net
                .send(
                    r.client,
                    r.skeleton_mailbox.id(),
                    RmiMessage::Request {
                        call,
                        context: live_ctx(call),
                        method: "echo".into(),
                        args: args.clone(),
                    }
                    .encode(),
                )
                .unwrap();
        }
        r.skeleton
            .handle(r.runtime, RmiMessage::Shutdown, &r.skeleton_mailbox);
        // Drain the two pending: they execute normally.
        for _ in 0..2 {
            let d = r.skeleton_mailbox.try_recv().unwrap();
            let msg = RmiMessage::decode(&d.payload).unwrap();
            r.skeleton.handle(d.from, msg, &r.skeleton_mailbox);
        }
        let mut got = Vec::new();
        while let Ok(d) = r.client_mailbox.try_recv() {
            got.push(RmiMessage::decode(&d.payload).unwrap());
        }
        assert!(got.iter().all(|m| matches!(m, RmiMessage::Response { .. })));
        assert_eq!(got.len(), 2);
        // Runtime got the readiness ack.
        match recv(&r.runtime_mailbox) {
            RmiMessage::ShutdownReady { uid } => assert_eq!(uid, 0),
            other => panic!("unexpected {other:?}"),
        }
        // A request arriving after the drain is redirected.
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 12,
                context: live_ctx(12),
                method: "echo".into(),
                args,
            },
            &r.skeleton_mailbox,
        );
        assert!(matches!(
            recv(&r.client_mailbox),
            RmiMessage::Redirected { .. }
        ));
    }

    #[test]
    fn expired_request_is_rejected_without_dispatch() {
        let mut r = rig();
        let (trace, _sink) = TraceHandle::buffered(16);
        r.skeleton.trace = trace.clone();
        let args = erm_transport::to_bytes(&"hi".to_string()).unwrap();
        // The rig's virtual clock sits at t=0; a deadline of 0 is expired.
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 8,
                context: InvocationContext {
                    semantics: Semantics::AtLeastOnce,
                    id: 70,
                    deadline: SimTime::ZERO,
                    attempt: 1,
                    origin: EndpointId(500),
                },
                method: "echo".into(),
                args,
            },
            &r.skeleton_mailbox,
        );
        match recv(&r.client_mailbox) {
            RmiMessage::Response {
                replayed: _,
                call: 8,
                outcome: Err(e),
            } => {
                assert!(e.is_deadline_exceeded());
            }
            other => panic!("unexpected {other:?}"),
        }
        // Never dispatched: served counter untouched, expiry traced and
        // counted in the next load report.
        assert_eq!(r.skeleton.served(), 0);
        assert!(trace
            .snapshot()
            .iter()
            .any(|rec| matches!(rec.event, TraceEvent::RequestExpired { invocation: 70, .. })));
        r.skeleton
            .handle(r.runtime, RmiMessage::PollLoad, &r.skeleton_mailbox);
        match recv(&r.runtime_mailbox) {
            RmiMessage::Load(report) => assert_eq!(report.expired, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn drain_redirect_echoes_the_request_deadline() {
        let mut r = rig();
        r.skeleton.handle(
            r.runtime,
            RmiMessage::StateBroadcast {
                epoch: 1,
                sentinel_uid: 1,
                members: vec![MemberState {
                    endpoint: EndpointId(91),
                    uid: 1,
                    pending: 0,
                }],
            },
            &r.skeleton_mailbox,
        );
        // Drain with nothing pending, then send a fresh request: redirected.
        r.skeleton
            .handle(r.runtime, RmiMessage::Shutdown, &r.skeleton_mailbox);
        let mut ctx = live_ctx(21);
        ctx.deadline = SimTime::from_secs(77);
        r.skeleton.handle(
            r.client,
            RmiMessage::Request {
                call: 21,
                context: ctx,
                method: "echo".into(),
                args: vec![],
            },
            &r.skeleton_mailbox,
        );
        match recv(&r.client_mailbox) {
            RmiMessage::Redirected {
                deadline, members, ..
            } => {
                assert_eq!(deadline, SimTime::from_secs(77));
                assert_eq!(members, vec![EndpointId(91)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ping_pong() {
        let mut r = rig();
        r.skeleton
            .handle(r.client, RmiMessage::Ping, &r.skeleton_mailbox);
        assert!(matches!(recv(&r.client_mailbox), RmiMessage::Pong));
    }

    fn request(call: u64, deadline: SimTime) -> RmiMessage {
        RmiMessage::Request {
            call,
            context: InvocationContext {
                semantics: Semantics::AtLeastOnce,
                id: call,
                deadline,
                attempt: 1,
                origin: EndpointId(500),
            },
            method: "echo".into(),
            args: erm_transport::to_bytes(&"x".to_string()).unwrap(),
        }
    }

    #[test]
    fn full_queue_is_refused_with_overloaded() {
        let mut r = rig_with_admission(Some(AdmissionConfig::fifo(2)));
        for call in 0..3 {
            r.skeleton.ingest(
                r.client,
                request(call, SimTime::from_secs(1_000)),
                &r.skeleton_mailbox,
            );
        }
        // Third arrival refused before queueing, with a retry hint.
        match recv(&r.client_mailbox) {
            RmiMessage::Overloaded {
                call,
                queue_depth,
                retry_after,
            } => {
                assert_eq!(call, 2);
                assert_eq!(queue_depth, 2);
                assert!(!retry_after.is_zero());
            }
            other => panic!("unexpected {other:?}"),
        }
        // The two admitted requests still execute.
        while r.skeleton.step() {}
        let mut ok = 0;
        while let Ok(d) = r.client_mailbox.try_recv() {
            match RmiMessage::decode(&d.payload).unwrap() {
                RmiMessage::Response { outcome: Ok(_), .. } => ok += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(ok, 2);
        let stats = r.skeleton.admission_stats();
        assert_eq!((stats.admitted, stats.rejected), (2, 1));
        // The rejection lands in the next load report.
        r.skeleton
            .handle(r.runtime, RmiMessage::PollLoad, &r.skeleton_mailbox);
        match recv(&r.runtime_mailbox) {
            RmiMessage::Load(report) => assert_eq!(report.rejected, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn edf_discipline_dispatches_nearest_deadline_first() {
        let mut r = rig_with_admission(Some(AdmissionConfig::edf(8)));
        for (call, deadline_s) in [(0, 300u64), (1, 10), (2, 50)] {
            r.skeleton.ingest(
                r.client,
                request(call, SimTime::from_secs(deadline_s)),
                &r.skeleton_mailbox,
            );
        }
        while r.skeleton.step() {}
        let mut order = Vec::new();
        while let Ok(d) = r.client_mailbox.try_recv() {
            match RmiMessage::decode(&d.payload).unwrap() {
                RmiMessage::Response { call, .. } => order.push(call),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(order, vec![1, 2, 0], "EDF runs the most urgent first");
    }

    #[test]
    fn expired_queued_work_is_culled_not_dispatched() {
        let mut r = rig_with_admission(Some(AdmissionConfig::edf(8)));
        r.skeleton.ingest(
            r.client,
            request(0, SimTime::ZERO + SimDuration::from_millis(10)),
            &r.skeleton_mailbox,
        );
        r.skeleton.ingest(
            r.client,
            request(1, SimTime::from_secs(1_000)),
            &r.skeleton_mailbox,
        );
        r.clock.advance(SimDuration::from_millis(20));
        while r.skeleton.step() {}
        let first = recv(&r.client_mailbox);
        match first {
            RmiMessage::Response {
                replayed: _,
                call: 0,
                outcome: Err(e),
            } => assert!(e.is_deadline_exceeded()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            recv(&r.client_mailbox),
            RmiMessage::Response {
                replayed: _,
                call: 1,
                outcome: Ok(_),
            }
        ));
        assert_eq!(r.skeleton.served(), 1, "culled work is never dispatched");
        assert_eq!(r.skeleton.admission_stats().culled, 1);
    }

    #[test]
    fn pending_count_excludes_expired_queued_requests() {
        let mut r = rig_with_admission(Some(AdmissionConfig::fifo(8)));
        r.skeleton.ingest(
            r.client,
            request(0, SimTime::ZERO + SimDuration::from_millis(10)),
            &r.skeleton_mailbox,
        );
        r.skeleton.ingest(
            r.client,
            request(1, SimTime::from_secs(1_000)),
            &r.skeleton_mailbox,
        );
        r.clock.advance(SimDuration::from_millis(20));
        // Poll without pumping the queue: only the live request counts.
        r.skeleton
            .ingest(r.runtime, RmiMessage::PollLoad, &r.skeleton_mailbox);
        match recv(&r.runtime_mailbox) {
            RmiMessage::Load(report) => assert_eq!(report.pending, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn load_report_carries_queue_delay_percentiles() {
        let mut r = rig_with_admission(Some(AdmissionConfig::fifo(8)));
        r.skeleton.ingest(
            r.client,
            request(0, SimTime::from_secs(1_000)),
            &r.skeleton_mailbox,
        );
        r.clock.advance(SimDuration::from_millis(8));
        while r.skeleton.step() {}
        r.skeleton
            .handle(r.runtime, RmiMessage::PollLoad, &r.skeleton_mailbox);
        match recv(&r.runtime_mailbox) {
            RmiMessage::Load(report) => {
                assert_eq!(report.queue_delay_p50_us, 8_000);
                assert_eq!(report.queue_delay_p99_us, 8_000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
