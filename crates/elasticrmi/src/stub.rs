//! The client stub: local proxy for a whole elastic object pool (§2.3, §4.3).
//!
//! To the client application the pool is a single remote object; the stub is
//! where the pool's plurality is known. It
//!
//! * discovers membership from the sentinel on first contact,
//! * load-balances invocations across members (round-robin or random),
//! * marshals arguments, awaits and unmarshals results,
//! * on send failure, timeout or an explicit `Redirected` reply, retries the
//!   invocation on other members *including the sentinel*, and
//! * propagates the failure to the application only when every member has
//!   been tried.
//!
//! Invocations are **pipelined**: [`Stub::invoke_begin`] injects an
//! invocation and returns its id immediately, and the stub keeps the
//! retry/failover/deadline state of every outstanding invocation in a
//! pending map instead of on the call stack, so hundreds of requests can be
//! in flight on one endpoint at once — the property the open-loop load
//! harness relies on. [`Stub::poll_complete`] (or [`Stub::drain_completed`])
//! pumps the mailbox, advances every pending state machine, and surfaces
//! finished results correlated by invocation id. The blocking
//! [`Stub::invoke`] is a thin begin-then-wait wrapper over the same engine,
//! so its semantics (and every pre-existing test) are unchanged.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use erm_admission::AimdLimiter;
use erm_metrics::{TraceEvent, TraceHandle};
use erm_semantics::{Semantics, SemanticsTable};
use erm_sim::{seeded_rng, SharedClock, SimDuration, SimTime};
use erm_transport::{Datagram, EndpointId, Mailbox, Network, RecvError};
use rand::rngs::StdRng;
use rand::Rng;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::RmiError;
use crate::message::{InvocationContext, RmiMessage};

/// How often the wait loops re-check the (possibly virtual) clock while
/// polling the mailbox.
const POLL_TICK: Duration = Duration::from_millis(1);

/// Client-side load-balancing discipline (§4.3: "randomly or in a
/// round-robin fashion").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientLb {
    /// Rotate through members in order.
    RoundRobin,
    /// Pick a member uniformly at random (seeded, for reproducibility).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Counters the stub keeps about its own behaviour; useful in tests and for
/// application-level metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StubStats {
    /// Completed invocations (success or remote error).
    pub invocations: u64,
    /// Extra attempts beyond the first for any invocation.
    pub retries: u64,
    /// `Redirected` replies followed.
    pub redirects_followed: u64,
    /// Membership refreshes fetched from the sentinel.
    pub refreshes: u64,
    /// Invocations abandoned because their deadline passed.
    pub expired: u64,
    /// `Overloaded` rejections received from members.
    pub overloaded: u64,
    /// Invocations refused locally by the AIMD limiter before any send.
    pub throttled: u64,
    /// Attempts that failed fast because the target endpoint was closed
    /// (member crash), rather than waiting out the reply timeout.
    pub connections_closed: u64,
    /// Replies served from a skeleton's reply cache — a duplicate attempt
    /// suppressed instead of re-executed (wire v4).
    pub replays: u64,
}

/// A stub bound to one elastic object pool.
///
/// Not `Clone`: like a socket, each client thread opens its own stub (its
/// own endpoint) against the same pool.
pub struct Stub {
    net: Arc<dyn Network>,
    endpoint: EndpointId,
    mailbox: Mailbox,
    sentinel: EndpointId,
    members: Vec<EndpointId>,
    lb: ClientLb,
    rr_next: usize,
    rng: StdRng,
    next_call: u64,
    next_invocation: u64,
    clock: SharedClock,
    reply_timeout: SimDuration,
    invocation_budget: SimDuration,
    trace: TraceHandle,
    stats: StubStats,
    limiter: Option<Arc<AimdLimiter>>,
    /// Per-method invocation semantics; default all-`AtLeastOnce`.
    semantics: SemanticsTable,
    /// Outstanding invocations by id — the call-stack state of the old
    /// blocking retry loop, one entry per in-flight invocation.
    pending: BTreeMap<u64, Pending>,
    /// Wire call id -> invocation id, for correlating replies. An attempt
    /// that is abandoned (timeout, crash failover) is removed here, which
    /// is exactly what makes its late reply "stale".
    calls: HashMap<u64, u64>,
    /// Finished invocations awaiting [`Stub::poll_complete`].
    completed: BTreeMap<u64, Result<Vec<u8>, RmiError>>,
    /// Deadline of the outstanding async membership refresh, if any.
    refresh_inflight: Option<SimTime>,
}

impl std::fmt::Debug for Stub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stub")
            .field("endpoint", &self.endpoint)
            .field("sentinel", &self.sentinel)
            .field("members", &self.members)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Stub {
    /// Connects to the pool whose sentinel listens at `sentinel`, fetching
    /// the member list ("while contacting the sentinel for the first time,
    /// the stub requests the identities of the other skeletons"). All
    /// timeout and deadline arithmetic runs on `clock` — the pool's
    /// simulation clock — so virtual-time tests get deterministic timeouts
    /// and every hop of an invocation agrees on its deadline.
    ///
    /// # Errors
    ///
    /// [`RmiError::SentinelUnreachable`] when the sentinel cannot be reached
    /// or does not answer within the reply timeout.
    pub fn connect(
        net: Arc<dyn Network>,
        endpoint: EndpointId,
        mailbox: Mailbox,
        sentinel: EndpointId,
        lb: ClientLb,
        clock: SharedClock,
    ) -> Result<Stub, RmiError> {
        let rng = match lb {
            ClientLb::Random { seed } => seeded_rng(seed),
            ClientLb::RoundRobin => seeded_rng(0),
        };
        let mut stub = Stub {
            net,
            endpoint,
            mailbox,
            sentinel,
            members: Vec::new(),
            lb,
            rr_next: 0,
            rng,
            next_call: 0,
            next_invocation: 0,
            clock,
            reply_timeout: SimDuration::from_millis(500),
            invocation_budget: SimDuration::from_secs(30),
            trace: TraceHandle::disabled(),
            stats: StubStats::default(),
            limiter: None,
            semantics: SemanticsTable::default(),
            pending: BTreeMap::new(),
            calls: HashMap::new(),
            completed: BTreeMap::new(),
            refresh_inflight: None,
        };
        stub.refresh_members()?;
        Ok(stub)
    }

    /// Overrides the per-attempt reply timeout (default 500 ms of clock
    /// time).
    pub fn set_reply_timeout(&mut self, timeout: SimDuration) {
        self.reply_timeout = timeout;
    }

    /// Overrides the end-to-end invocation budget (default 30 s of clock
    /// time). Each `invoke` gets `now + budget` as its absolute deadline;
    /// retries and followed redirects all run under that one deadline, and
    /// the call fails with [`RmiError::DeadlineExceeded`] when it passes.
    pub fn set_invocation_budget(&mut self, budget: SimDuration) {
        self.invocation_budget = budget;
    }

    /// Routes this stub's trace events into `trace`.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Installs a client-side AIMD concurrency limiter. Every `invoke` must
    /// then acquire a slot before sending: when the limiter's window is full
    /// or it is inside a backoff period the call fails fast with
    /// [`RmiError::Throttled`] instead of adding to a pool that is already
    /// refusing work. `Overloaded` rejections and deadline expiries shrink
    /// the window multiplicatively; completed invocations re-open it
    /// additively. Sharing one `Arc` across a process's stubs gives the
    /// process a single congestion view of the pool.
    pub fn set_limiter(&mut self, limiter: Arc<AimdLimiter>) {
        self.limiter = Some(limiter);
    }

    /// The installed AIMD limiter, if any.
    pub fn limiter(&self) -> Option<&Arc<AimdLimiter>> {
        self.limiter.as_ref()
    }

    /// Declares per-method invocation semantics (wire v4). The chosen
    /// [`Semantics`] rides inside each invocation's context, and the stub's
    /// retry policy changes accordingly:
    ///
    /// * `AtLeastOnce` (default) — today's behavior: retry anywhere.
    /// * `AtMostOnce` — once an attempt is *delivered* to a member, the
    ///   invocation commits to that member: silence (timeout, broken
    ///   connection) re-asks the same member, whose reply cache suppresses
    ///   the duplicate; only an explicit refusal (`Redirected`,
    ///   `Overloaded`) — proof the request never executed — releases the
    ///   commitment and resumes failover.
    /// * `Maybe` — one wire attempt, no retransmission ever.
    pub fn set_semantics(&mut self, table: SemanticsTable) {
        self.semantics = table;
    }

    /// The member endpoints the stub currently knows.
    pub fn members(&self) -> &[EndpointId] {
        &self.members
    }

    /// Behaviour counters.
    pub fn stats(&self) -> StubStats {
        self.stats
    }

    /// Invokes `method` with `args` on the pool, returning the decoded
    /// result — the ElasticRMI analogue of calling a method on a Java RMI
    /// stub. Unicast: exactly one member executes the invocation.
    ///
    /// # Errors
    ///
    /// * [`RmiError::Remote`] — the method executed and raised,
    /// * [`RmiError::PoolUnreachable`] — every member (sentinel included)
    ///   failed to answer,
    /// * [`RmiError::Encode`]/[`RmiError::Decode`] — marshalling failures.
    pub fn invoke<A, R>(&mut self, method: &str, args: &A) -> Result<R, RmiError>
    where
        A: Serialize + ?Sized,
        R: DeserializeOwned,
    {
        let encoded = erm_transport::to_bytes(args).map_err(|e| RmiError::Encode(e.to_string()))?;
        let outcome = self.invoke_raw(method, encoded)?;
        erm_transport::from_bytes(&outcome).map_err(|e| RmiError::Decode(e.to_string()))
    }

    /// Like [`Stub::invoke`] but with pre-encoded arguments and an encoded
    /// result — the layer generated stubs would call. A thin wrapper over
    /// the pipelined engine: [`Stub::invoke_begin_raw`] plus a blocking
    /// wait for that one invocation (other outstanding invocations keep
    /// being driven while it waits).
    ///
    /// # Errors
    ///
    /// As for [`Stub::invoke`], minus `Decode`, plus
    /// [`RmiError::Throttled`] (limiter refused the slot locally) and
    /// [`RmiError::Overloaded`] (every attempted member rejected with a
    /// full admission queue).
    pub fn invoke_raw(&mut self, method: &str, args: Vec<u8>) -> Result<Vec<u8>, RmiError> {
        let invocation = self.invoke_begin_raw(method, args)?;
        self.wait_complete(invocation)
    }

    /// Begins a pipelined invocation and returns its invocation id without
    /// waiting for the result. The first attempt is sent immediately;
    /// retries, redirects, failover and deadline enforcement then happen
    /// inside the engine whenever the stub is pumped ([`Stub::poll_complete`],
    /// [`Stub::drain_completed`], or a blocking [`Stub::invoke`]). Any
    /// number of invocations may be outstanding at once — this is what lets
    /// one connection carry hundreds of in-flight requests.
    ///
    /// # Errors
    ///
    /// [`RmiError::Encode`] on marshalling failure, [`RmiError::Throttled`]
    /// when the AIMD limiter refuses the slot (the invocation is not
    /// injected).
    pub fn invoke_begin<A>(&mut self, method: &str, args: &A) -> Result<u64, RmiError>
    where
        A: Serialize + ?Sized,
    {
        let encoded = erm_transport::to_bytes(args).map_err(|e| RmiError::Encode(e.to_string()))?;
        self.invoke_begin_raw(method, encoded)
    }

    /// [`Stub::invoke_begin`] with pre-encoded arguments.
    ///
    /// Creates the invocation's [`InvocationContext`] once — id, absolute
    /// deadline (`now + invocation budget`), attempt counter — and re-sends
    /// it with every retry and followed redirect, so every skeleton that
    /// sees the invocation enforces the same deadline.
    ///
    /// # Errors
    ///
    /// [`RmiError::Throttled`] when the AIMD limiter refuses the slot.
    pub fn invoke_begin_raw(&mut self, method: &str, args: Vec<u8>) -> Result<u64, RmiError> {
        let invocation = self.next_invocation;
        self.next_invocation += 1;
        let mut holds_slot = false;
        if let Some(limiter) = self.limiter.clone() {
            let now = self.clock.now();
            if !limiter.try_acquire(now) {
                let retry_after = limiter.blocked_for(now);
                self.stats.throttled += 1;
                self.trace.emit(
                    now,
                    TraceEvent::InvocationThrottled {
                        invocation,
                        retry_after,
                    },
                );
                return Err(RmiError::Throttled { retry_after });
            }
            holds_slot = true;
        }
        let now = self.clock.now();
        // `attempt: 0` is the never-sent sentinel, not a wire value:
        // `fire_attempt` stamps the 1-based, strictly-increasing attempt
        // counter onto the context before every send (first attempt and
        // every resend alike), so skeletons only ever see attempt >= 1.
        let context = InvocationContext {
            id: invocation,
            deadline: now + self.invocation_budget,
            attempt: 0,
            origin: self.endpoint,
            semantics: self.semantics.semantics_for(method),
        };
        let targets = self.target_order();
        self.pending.insert(
            invocation,
            Pending {
                context,
                method: method.to_string(),
                args,
                targets,
                next_target: 0,
                attempts: 0,
                overload_hint: None,
                refreshed: false,
                awaiting_refresh: false,
                holds_slot,
                committed: None,
                state: PendingState::Idle { not_before: now },
            },
        );
        self.advance_one(invocation);
        Ok(invocation)
    }

    /// Pumps the engine and takes the result of `invocation` if it has
    /// finished. `None` means still in flight — keep the (possibly virtual)
    /// clock moving and poll again.
    pub fn poll_complete(&mut self, invocation: u64) -> Option<Result<Vec<u8>, RmiError>> {
        self.pump();
        self.completed.remove(&invocation)
    }

    /// Pumps the engine and takes *every* finished invocation as
    /// `(invocation id, result)` pairs in id order — the bulk-harvest shape
    /// an open-loop load generator wants.
    pub fn drain_completed(&mut self) -> Vec<(u64, Result<Vec<u8>, RmiError>)> {
        self.pump();
        std::mem::take(&mut self.completed).into_iter().collect()
    }

    /// Number of invocations begun but not yet finished.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Blocks until `invocation` finishes, sleeping on the mailbox between
    /// engine turns so a reply wakes the stub immediately.
    fn wait_complete(&mut self, invocation: u64) -> Result<Vec<u8>, RmiError> {
        loop {
            self.pump();
            if let Some(result) = self.completed.remove(&invocation) {
                return result;
            }
            match self.mailbox.recv_timeout(POLL_TICK) {
                Ok(datagram) => self.process_datagram(datagram),
                Err(RecvError::Timeout) => {}
                // Own endpoint closed: nothing will ever arrive; let the
                // pending deadlines run out instead of busy-spinning.
                Err(RecvError::Closed) => std::thread::sleep(POLL_TICK),
            }
        }
    }

    /// One engine turn: drain the mailbox, then advance every pending
    /// invocation's state machine — fire due attempts, fail over from
    /// closed endpoints, time out mute members, expire blown deadlines.
    fn pump(&mut self) {
        while let Ok(datagram) = self.mailbox.try_recv() {
            self.process_datagram(datagram);
        }
        let ids: Vec<u64> = self.pending.keys().copied().collect();
        for id in ids {
            self.advance_one(id);
        }
        // An async refresh the sentinel never answered. While invocations
        // are still waiting on it, keep asking (one request per reply
        // timeout) — they retry until their own deadlines expire, as the
        // blocking loop did. Only a sentinel the transport refuses outright
        // ends the wait early (pool unreachable).
        if self
            .refresh_inflight
            .is_some_and(|deadline| self.clock.now() >= deadline)
        {
            self.refresh_inflight = None;
            if self
                .pending
                .values()
                .any(|pending| pending.awaiting_refresh)
            {
                self.stats.refreshes += 1;
                if self
                    .net
                    .send(
                        self.endpoint,
                        self.sentinel,
                        RmiMessage::PoolInfoRequest.encode(),
                    )
                    .is_ok()
                {
                    self.refresh_inflight = Some(self.clock.now() + self.reply_timeout);
                } else {
                    for pending in self.pending.values_mut() {
                        pending.awaiting_refresh = false;
                    }
                }
            }
        }
    }

    /// Routes one inbound message to the pending invocation it belongs to.
    /// Replies whose call id is unknown are stale — their attempt was
    /// already abandoned (timeout, crash failover) — and are dropped,
    /// exactly as the blocking loop used to skip them.
    fn process_datagram(&mut self, datagram: Datagram) {
        let Ok(msg) = RmiMessage::decode(&datagram.payload) else {
            return;
        };
        match msg {
            RmiMessage::Response {
                call,
                outcome,
                replayed,
            } => {
                let Some(invocation) = self.calls.remove(&call) else {
                    return;
                };
                if replayed {
                    // Served from the skeleton's reply cache: a duplicate of
                    // ours was suppressed rather than re-executed.
                    self.stats.replays += 1;
                }
                self.finish_completed(invocation, outcome.map_err(RmiError::Remote));
            }
            RmiMessage::Redirected {
                call,
                members,
                deadline,
            } => {
                let Some(invocation) = self.calls.remove(&call) else {
                    return;
                };
                self.on_redirected(invocation, members, deadline);
                self.advance_one(invocation);
            }
            RmiMessage::Overloaded {
                call, retry_after, ..
            } => {
                let Some(invocation) = self.calls.remove(&call) else {
                    return;
                };
                self.on_overloaded(invocation, retry_after);
                self.advance_one(invocation);
            }
            RmiMessage::PoolInfo {
                sentinel, members, ..
            } => {
                self.refresh_inflight = None;
                self.sentinel = sentinel;
                if !members.is_empty() {
                    self.members = members;
                    self.rr_next = 0;
                }
                // Invocations that asked for this refresh get the fresh
                // members appended to their remaining walk.
                let fresh = self.members.clone();
                for pending in self.pending.values_mut() {
                    if !pending.awaiting_refresh {
                        continue;
                    }
                    pending.awaiting_refresh = false;
                    for m in &fresh {
                        if !pending.targets.contains(m) {
                            pending.targets.push(*m);
                        }
                    }
                }
            }
            // Requests and pool-control traffic: not for a client endpoint.
            _ => {}
        }
    }

    /// Runs `invocation`'s state machine until it blocks (waiting on a
    /// reply or a backoff) or finishes — the target walk of the old retry
    /// loop, kept in the pending map instead of on the call stack.
    fn advance_one(&mut self, invocation: u64) {
        loop {
            let now = self.clock.now();
            let (state, expired, exhausted, awaiting_refresh) = {
                let Some(pending) = self.pending.get(&invocation) else {
                    return;
                };
                (
                    pending.state,
                    pending.context.is_expired(now),
                    // A committed at-most-once invocation never runs out of
                    // targets: it re-asks its member until the deadline.
                    pending.committed.is_none() && pending.next_target >= pending.targets.len(),
                    pending.awaiting_refresh,
                )
            };
            match state {
                PendingState::Waiting {
                    call,
                    target,
                    attempt_deadline,
                } => {
                    // A member that died *after* accepting the request never
                    // replies; detecting the closed endpoint here fails over
                    // immediately instead of burning the whole reply timeout.
                    if !self.net.endpoint_open(target) {
                        self.calls.remove(&call);
                        self.on_connection_closed(invocation, target);
                        continue;
                    }
                    if now >= attempt_deadline {
                        self.calls.remove(&call);
                        if expired {
                            self.finish_expired(invocation);
                            return;
                        }
                        self.on_attempt_timeout(invocation, target);
                        continue;
                    }
                    return;
                }
                PendingState::Idle { not_before } => {
                    if expired {
                        self.finish_expired(invocation);
                        return;
                    }
                    if now < not_before {
                        return;
                    }
                    if exhausted {
                        // A membership refresh is still in flight for this
                        // invocation: hold on, fresh members may yet extend
                        // the walk (the blocking loop refreshed before
                        // declaring the pool unreachable).
                        if awaiting_refresh && self.refresh_inflight.is_some() {
                            return;
                        }
                        self.finish_unreachable(invocation);
                        return;
                    }
                    self.fire_attempt(invocation);
                }
            }
        }
    }

    /// Sends the next attempt of `invocation` to its next target.
    fn fire_attempt(&mut self, invocation: u64) {
        let now = self.clock.now();
        let call = self.next_call;
        self.next_call += 1;
        let (target, payload, attempt, deadline) = {
            let Some(pending) = self.pending.get_mut(&invocation) else {
                return;
            };
            // A committed at-most-once invocation is pinned to the member
            // that already took delivery — its reply cache is the only
            // thing that can answer without a second execution. Everyone
            // else walks the target order.
            let target = match pending.committed {
                Some(member) => member,
                None => {
                    let t = pending.targets[pending.next_target];
                    pending.next_target += 1;
                    t
                }
            };
            pending.attempts += 1;
            // The wire attempt counter is 1-based and strictly increasing
            // across every resend path (timeout retry, fast-failover,
            // redirect splice) — the regression contract of wire v4.
            pending.context.attempt = pending.attempts;
            let msg = RmiMessage::Request {
                call,
                context: pending.context,
                method: pending.method.clone(),
                args: pending.args.clone(),
            };
            (
                target,
                msg.encode(),
                pending.attempts,
                pending.context.deadline,
            )
        };
        if attempt > 1 {
            self.stats.retries += 1;
        }
        self.trace.emit(
            now,
            TraceEvent::AttemptStarted {
                invocation,
                attempt,
                target: target.0,
                deadline,
            },
        );
        if self.net.send(self.endpoint, target, payload).is_err() {
            // The transport knows the endpoint is gone — not a silent
            // timeout, an immediate failover signal.
            self.on_connection_closed(invocation, target);
            return;
        }
        if let Some(pending) = self.pending.get_mut(&invocation) {
            if pending.context.semantics == Semantics::AtMostOnce {
                // Delivered: the member may execute it at any point from
                // here on, so the invocation commits to this member.
                pending.committed = Some(target);
            }
        }
        // The attempt waits until its reply timeout or the invocation's
        // deadline, whichever comes first — on the injected clock.
        let attempt_deadline = (now + self.reply_timeout).min(deadline);
        if let Some(pending) = self.pending.get_mut(&invocation) {
            pending.state = PendingState::Waiting {
                call,
                target,
                attempt_deadline,
            };
        }
        self.calls.insert(call, invocation);
    }

    /// The target is definitively gone (send refused, or endpoint closed
    /// mid-wait): fail over immediately, with jittered backoff before the
    /// next attempt.
    fn on_connection_closed(&mut self, invocation: u64, target: EndpointId) {
        self.stats.connections_closed += 1;
        let attempt = self
            .pending
            .get(&invocation)
            .map_or(0, |pending| pending.attempts);
        self.trace.emit(
            self.clock.now(),
            TraceEvent::AttemptFailed {
                invocation,
                attempt,
                target: target.0,
            },
        );
        // `Maybe`: strictly one wire attempt — any failure after it is
        // terminal, never a retransmission.
        if self.finish_if_maybe(invocation) {
            return;
        }
        self.maybe_refresh(invocation);
        let now = self.clock.now();
        let Some(pending) = self.pending.get_mut(&invocation) else {
            return;
        };
        if pending.committed.is_some() || pending.next_target < pending.targets.len() {
            // Fast failover is a stampede risk: every client that was
            // waiting on the dead member retries at once. A seeded,
            // jittered, exponentially growing delay (1 ms base, 16 ms cap,
            // uniform in [step/2, step]) spreads the herd before it hits
            // the survivors — bounded by the invocation deadline, all on
            // the injected clock.
            let step_us = (1_000u64 << u64::from(pending.attempts.min(4))).min(16_000);
            let wait_us = self.rng.gen_range(step_us / 2..=step_us);
            let not_before =
                (now + SimDuration::from_micros(wait_us)).min(pending.context.deadline);
            pending.state = PendingState::Idle { not_before };
        } else {
            pending.state = PendingState::Idle { not_before: now };
        }
    }

    /// The target stayed mute for the whole reply timeout: move on (no
    /// backoff — nothing crashed, the member may just be slow).
    fn on_attempt_timeout(&mut self, invocation: u64, target: EndpointId) {
        let attempt = self
            .pending
            .get(&invocation)
            .map_or(0, |pending| pending.attempts);
        self.trace.emit(
            self.clock.now(),
            TraceEvent::AttemptFailed {
                invocation,
                attempt,
                target: target.0,
            },
        );
        if self.finish_if_maybe(invocation) {
            return;
        }
        self.maybe_refresh(invocation);
        let now = self.clock.now();
        if let Some(pending) = self.pending.get_mut(&invocation) {
            pending.state = PendingState::Idle { not_before: now };
        }
    }

    /// Terminates a `Maybe` invocation after its single attempt failed.
    /// Returns whether it did.
    fn finish_if_maybe(&mut self, invocation: u64) -> bool {
        let is_maybe = self
            .pending
            .get(&invocation)
            .is_some_and(|pending| pending.context.semantics == Semantics::Maybe);
        if is_maybe {
            self.finish_unreachable(invocation);
        }
        is_maybe
    }

    /// A member redirected the call: try the suggested members next
    /// (before our possibly stale list), never extending the budget.
    fn on_redirected(
        &mut self,
        invocation: u64,
        mut suggested: Vec<EndpointId>,
        deadline: SimTime,
    ) {
        if self.finish_if_maybe(invocation) {
            return;
        }
        self.stats.redirects_followed += 1;
        let now = self.clock.now();
        let (attempt, remaining) = {
            let Some(pending) = self.pending.get_mut(&invocation) else {
                return;
            };
            // An explicit refusal proves the request never executed there
            // (the reply cache is consulted before the drain redirect), so
            // an at-most-once commitment is released and failover resumes.
            pending.committed = None;
            // A redirect never extends the budget: the follow-up attempt
            // inherits whichever deadline is tighter.
            pending.context.deadline = pending.context.deadline.min(deadline);
            let i = pending.next_target;
            suggested.retain(|m| !pending.targets[i..].contains(m));
            for (k, m) in suggested.into_iter().enumerate() {
                pending.targets.insert(i + k, m);
            }
            pending.state = PendingState::Idle { not_before: now };
            (pending.attempts, pending.context.remaining(now))
        };
        self.trace.emit(
            now,
            TraceEvent::AttemptRedirected {
                invocation,
                attempt,
                remaining,
            },
        );
    }

    /// A member rejected the call with a full admission queue: remember the
    /// soonest retry hint and keep walking — another member may have room.
    fn on_overloaded(&mut self, invocation: u64, retry_after: SimDuration) {
        self.stats.overloaded += 1;
        let now = self.clock.now();
        if let Some(limiter) = &self.limiter {
            limiter.on_congestion(now, Some(retry_after));
        }
        let (attempt, target) = {
            let Some(pending) = self.pending.get_mut(&invocation) else {
                return;
            };
            let target = match pending.state {
                PendingState::Waiting { target, .. } => target.0,
                PendingState::Idle { .. } => 0,
            };
            pending.overload_hint = Some(
                pending
                    .overload_hint
                    .map_or(retry_after, |h| h.min(retry_after)),
            );
            // Refused before queueing — proof of non-execution, so an
            // at-most-once commitment is released like on a redirect.
            pending.committed = None;
            pending.state = PendingState::Idle { not_before: now };
            (pending.attempts, target)
        };
        if self.finish_if_maybe(invocation) {
            return;
        }
        self.trace.emit(
            now,
            TraceEvent::AttemptOverloaded {
                invocation,
                attempt,
                target,
                retry_after,
            },
        );
    }

    /// Member gone or mute: once per invocation, ask the sentinel for a
    /// fresh membership view — asynchronously, so the other pending
    /// invocations keep flowing while the `PoolInfo` is in flight.
    /// Concurrent failures share one outstanding request.
    fn maybe_refresh(&mut self, invocation: u64) {
        let already = self
            .pending
            .get(&invocation)
            .is_none_or(|pending| pending.refreshed);
        if already {
            return;
        }
        if self.refresh_inflight.is_none() {
            self.stats.refreshes += 1;
            if self
                .net
                .send(
                    self.endpoint,
                    self.sentinel,
                    RmiMessage::PoolInfoRequest.encode(),
                )
                .is_err()
            {
                // Sentinel unreachable: leave `refreshed` false so a later
                // failure of this invocation may try again.
                return;
            }
            self.refresh_inflight = Some(self.clock.now() + self.reply_timeout);
        }
        if let Some(pending) = self.pending.get_mut(&invocation) {
            pending.refreshed = true;
            pending.awaiting_refresh = true;
        }
    }

    /// The invocation produced a result (success or application error).
    fn finish_completed(&mut self, invocation: u64, result: Result<Vec<u8>, RmiError>) {
        let Some(pending) = self.pending.remove(&invocation) else {
            return;
        };
        self.stats.invocations += 1;
        self.trace.emit(
            self.clock.now(),
            TraceEvent::InvocationCompleted {
                invocation,
                attempts: pending.attempts,
                ok: result.is_ok(),
            },
        );
        // A completed round trip — even one that raised an application
        // error — proves the pool had capacity: widen the window. Congestion
        // signals (Overloaded, deadline expiry) already shrank it closest
        // to the evidence.
        self.settle_limiter(
            &pending,
            matches!(&result, Ok(_) | Err(RmiError::Remote(_))),
        );
        self.completed.insert(invocation, result);
    }

    /// The invocation ran out its whole budget — congestion too: the pool
    /// could not serve it in time.
    fn finish_expired(&mut self, invocation: u64) {
        let Some(pending) = self.pending.remove(&invocation) else {
            return;
        };
        self.stats.expired += 1;
        if let Some(limiter) = &self.limiter {
            limiter.on_congestion(self.clock.now(), None);
        }
        self.trace.emit(
            self.clock.now(),
            TraceEvent::InvocationExpired {
                invocation,
                attempts: pending.attempts,
            },
        );
        let attempts = pending.attempts;
        self.settle_limiter(&pending, false);
        self.completed
            .insert(invocation, Err(RmiError::DeadlineExceeded { attempts }));
    }

    /// Every target (sentinel included) was tried and none answered.
    fn finish_unreachable(&mut self, invocation: u64) {
        let Some(pending) = self.pending.remove(&invocation) else {
            return;
        };
        let attempts = pending.attempts;
        let result = match pending.overload_hint {
            Some(retry_after) => Err(RmiError::Overloaded {
                attempts,
                retry_after,
            }),
            None => Err(RmiError::PoolUnreachable { attempts }),
        };
        self.settle_limiter(&pending, false);
        self.completed.insert(invocation, result);
    }

    /// Returns the invocation's limiter slot; `success` re-opens the window.
    fn settle_limiter(&self, pending: &Pending, success: bool) {
        if !pending.holds_slot {
            return;
        }
        if let Some(limiter) = &self.limiter {
            limiter.release();
            if success {
                limiter.on_success();
            }
        }
    }

    /// The attempt order for one invocation: the LB-chosen member first,
    /// then the remaining members, then the sentinel (always last resort,
    /// §4.3: "retries the invocation on other objects including the
    /// sentinel").
    fn target_order(&mut self) -> Vec<EndpointId> {
        let mut order: Vec<EndpointId> = Vec::with_capacity(self.members.len() + 1);
        if !self.members.is_empty() {
            let start = match self.lb {
                ClientLb::RoundRobin => {
                    let s = self.rr_next % self.members.len();
                    self.rr_next = self.rr_next.wrapping_add(1);
                    s
                }
                ClientLb::Random { .. } => self.rng.gen_range(0..self.members.len()),
            };
            for k in 0..self.members.len() {
                order.push(self.members[(start + k) % self.members.len()]);
            }
        }
        if !order.contains(&self.sentinel) {
            order.push(self.sentinel);
        }
        order
    }

    /// Fetches the member list from the sentinel.
    ///
    /// # Errors
    ///
    /// [`RmiError::SentinelUnreachable`] when no `PoolInfo` arrives in time.
    pub fn refresh_members(&mut self) -> Result<(), RmiError> {
        self.stats.refreshes += 1;
        if self
            .net
            .send(
                self.endpoint,
                self.sentinel,
                RmiMessage::PoolInfoRequest.encode(),
            )
            .is_err()
        {
            return Err(RmiError::SentinelUnreachable(self.sentinel));
        }
        let mut wait = ClockWait::new(self.clock.now() + self.reply_timeout);
        loop {
            if matches!(wait.poll(self.clock.as_ref()), WaitState::DeadlineReached) {
                return Err(RmiError::SentinelUnreachable(self.sentinel));
            }
            match self.mailbox.recv_timeout(POLL_TICK) {
                Ok(datagram) => {
                    // Everything routes through the engine — a `Response`
                    // arriving here belongs to some pending pipelined
                    // invocation and must not be swallowed by the refresh.
                    let got_info = matches!(
                        RmiMessage::decode(&datagram.payload),
                        Ok(RmiMessage::PoolInfo { .. })
                    );
                    self.process_datagram(datagram);
                    if got_info {
                        return Ok(());
                    }
                }
                Err(RecvError::Timeout) => continue,
                Err(RecvError::Closed) => return Err(RmiError::SentinelUnreachable(self.sentinel)),
            }
        }
    }
}

/// A wait bounded by a deadline on the injected (possibly virtual) clock.
///
/// Purely clock-driven: protocol semantics (timeouts, budgets, backoff)
/// live entirely in sim time, so a run on a `VirtualClock` is decided by
/// clock advances alone and a run on the `SystemClock` by wall time — the
/// two domains never mix. (An earlier version kept a wall-clock backstop
/// "in case nobody advances the virtual clock"; that blurred every
/// timeout's semantics and made TCP runs nondeterministic, so it is gone:
/// a harness that pauses its clock forever gets the hang it asked for.)
struct ClockWait {
    deadline: SimTime,
}

enum WaitState {
    Waiting,
    DeadlineReached,
}

impl ClockWait {
    fn new(deadline: SimTime) -> Self {
        ClockWait { deadline }
    }

    fn poll(&mut self, clock: &dyn erm_sim::Clock) -> WaitState {
        if clock.now() >= self.deadline {
            WaitState::DeadlineReached
        } else {
            WaitState::Waiting
        }
    }
}

/// One outstanding invocation: everything the old blocking retry loop kept
/// on the call stack, parked in [`Stub`]'s pending map so hundreds of
/// invocations can be in flight at once.
struct Pending {
    /// The context re-sent with every attempt — id, absolute deadline,
    /// attempt counter, origin endpoint.
    context: InvocationContext,
    method: String,
    args: Vec<u8>,
    /// The walk order: LB-chosen member first, remaining members, sentinel
    /// last; extended in place by redirects and membership refreshes.
    targets: Vec<EndpointId>,
    /// Index of the next target to try.
    next_target: usize,
    /// Attempts fired so far.
    attempts: u32,
    /// Soonest `retry_after` hint seen across `Overloaded` rejections.
    overload_hint: Option<SimDuration>,
    /// Whether this invocation already asked for a membership refresh
    /// (at most one per invocation, as in the blocking loop).
    refreshed: bool,
    /// Whether this invocation is waiting for a `PoolInfo` to extend its
    /// target walk.
    awaiting_refresh: bool,
    /// Whether this invocation holds an AIMD limiter slot to return.
    holds_slot: bool,
    /// `AtMostOnce` only: the member a request was *delivered* to. From
    /// then on every resend goes back to that member (its reply cache
    /// dedups); an explicit refusal (`Redirected`/`Overloaded`) proves the
    /// request never executed and clears the commitment.
    committed: Option<EndpointId>,
    state: PendingState,
}

/// Where one pending invocation is in its attempt cycle.
#[derive(Debug, Clone, Copy)]
enum PendingState {
    /// No attempt outstanding; the next one may fire at `not_before`
    /// (backoff after a connection-closed failover, or immediately).
    Idle {
        /// Earliest clock time the next attempt may be sent.
        not_before: SimTime,
    },
    /// An attempt is on the wire awaiting its reply.
    Waiting {
        /// Wire call id the reply must carry.
        call: u64,
        /// The member the attempt went to.
        target: EndpointId,
        /// When to give up on this attempt (reply timeout, capped by the
        /// invocation deadline).
        attempt_deadline: SimTime,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RemoteError;
    use erm_sim::SystemClock;
    use erm_transport::{Host, InProcNetwork};

    /// A scripted fake member that answers from a queue of behaviours.
    struct FakeMember {
        net: InProcNetwork,
        endpoint: EndpointId,
        mailbox: Mailbox,
    }

    impl FakeMember {
        fn new(net: &InProcNetwork) -> Self {
            let (endpoint, mailbox) = net.open();
            FakeMember {
                net: net.clone(),
                endpoint,
                mailbox,
            }
        }

        /// Answer the next queued request with `f(call) -> RmiMessage`.
        /// Discovery requests arriving in between are served transparently.
        fn answer(&self, f: impl Fn(u64) -> RmiMessage) {
            loop {
                let d = self
                    .mailbox
                    .recv_timeout(Duration::from_secs(5))
                    .expect("request expected");
                match RmiMessage::decode(&d.payload).unwrap() {
                    RmiMessage::Request { call, .. } => {
                        self.net
                            .send(self.endpoint, d.from, f(call).encode())
                            .unwrap();
                        return;
                    }
                    RmiMessage::PoolInfoRequest => {
                        let info = RmiMessage::PoolInfo {
                            epoch: 99,
                            sentinel: self.endpoint,
                            members: Vec::new(),
                        };
                        self.net.send(self.endpoint, d.from, info.encode()).unwrap();
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    fn pool_info(sentinel: &FakeMember, members: &[&FakeMember]) -> RmiMessage {
        RmiMessage::PoolInfo {
            epoch: 1,
            sentinel: sentinel.endpoint,
            members: members.iter().map(|m| m.endpoint).collect(),
        }
    }

    fn connect(net: &InProcNetwork, sentinel: &FakeMember, members: &[&FakeMember]) -> Stub {
        let (client_ep, client_mb) = net.open();
        let net_arc: Arc<dyn Network> = Arc::new(net.clone());
        let info = pool_info(sentinel, members);
        let s_ep = sentinel.endpoint;
        // Connect blocks on discovery, so run it in a thread and serve the
        // PoolInfoRequest from here.
        let handle = std::thread::spawn(move || {
            Stub::connect(
                net_arc,
                client_ep,
                client_mb,
                s_ep,
                ClientLb::RoundRobin,
                Arc::new(SystemClock::new()),
            )
        });
        let d = sentinel.mailbox.recv().expect("discovery request");
        net.send(sentinel.endpoint, d.from, info.encode()).unwrap();
        handle.join().unwrap().expect("connect succeeds")
    }

    #[test]
    fn connect_discovers_members() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let stub = connect(&net, &sentinel, &[&sentinel, &m1]);
        assert_eq!(stub.members(), &[sentinel.endpoint, m1.endpoint]);
    }

    #[test]
    fn invoke_round_robins_across_members() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel, &m1]);

        // First invocation goes to member 0 (sentinel), second to member 1.
        let h = std::thread::spawn(move || {
            let a: u32 = stub.invoke("m", &()).unwrap();
            let b: u32 = stub.invoke("m", &()).unwrap();
            (a, b, stub.stats())
        });
        let ok = |call: u64| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Ok(erm_transport::to_bytes(&1u32).unwrap()),
        };
        sentinel.answer(ok);
        m1.answer(ok);
        let (a, b, stats) = h.join().unwrap();
        assert_eq!((a, b), (1, 1));
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn invoke_fails_over_to_next_member_on_crash() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &sentinel]);
        stub.set_reply_timeout(SimDuration::from_millis(200));
        // Kill m1: sends to it now fail immediately.
        net.close_endpoint(m1.endpoint);
        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, stub.stats())
        });
        sentinel.answer(|call| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Ok(erm_transport::to_bytes(&9u32).unwrap()),
        });
        let (v, stats) = h.join().unwrap();
        assert_eq!(v, 9);
        assert!(stats.retries >= 1, "failover must count as retry");
        assert_eq!(
            stats.connections_closed, 1,
            "a dead endpoint is a connection-closed failure, not a timeout"
        );
    }

    #[test]
    fn endpoint_closed_mid_wait_fails_over_without_burning_reply_timeout() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &sentinel]);
        // A timeout long enough that burning it would fail the elapsed
        // assertion below by an order of magnitude.
        stub.set_reply_timeout(SimDuration::from_secs(10));
        let h = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, start.elapsed(), stub.stats())
        });
        // m1 accepts the request, then crashes before replying.
        let d = m1.mailbox.recv().expect("request reaches m1");
        assert!(matches!(
            RmiMessage::decode(&d.payload).unwrap(),
            RmiMessage::Request { .. }
        ));
        net.close_endpoint(m1.endpoint);
        sentinel.answer(|call| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Ok(erm_transport::to_bytes(&4u32).unwrap()),
        });
        let (v, elapsed, stats) = h.join().unwrap();
        assert_eq!(v, 4);
        assert!(
            elapsed < Duration::from_secs(5),
            "fail-fast, not a 10 s timeout burn: {elapsed:?}"
        );
        assert_eq!(stats.connections_closed, 1);
        assert!(stats.retries >= 1);
    }

    #[test]
    fn retry_backoff_is_jittered_and_seed_deterministic() {
        let draws = |seed: u64| {
            let mut rng = seeded_rng(seed);
            // Mirror backoff_before_retry's draw for the first 4 attempts.
            (1..=4u32)
                .map(|attempt| {
                    let step_us = (1_000u64 << u64::from(attempt.min(4))).min(16_000);
                    rng.gen_range(step_us / 2..=step_us)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7), "same seed, same backoff schedule");
        assert_ne!(draws(7), draws(8), "different seeds de-synchronize");
        for (attempt, wait) in draws(7).iter().enumerate() {
            let step = (1_000u64 << (attempt as u64 + 1)).min(16_000);
            assert!((step / 2..=step).contains(wait));
        }
    }

    #[test]
    fn redirected_reply_is_followed() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let m2 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1]);
        let m2_ep = m2.endpoint;
        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, stub.stats())
        });
        m1.answer(move |call| RmiMessage::Redirected {
            call,
            members: vec![m2_ep],
            deadline: SimTime::from_secs(1_000_000),
        });
        m2.answer(|call| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Ok(erm_transport::to_bytes(&5u32).unwrap()),
        });
        let (v, stats) = h.join().unwrap();
        assert_eq!(v, 5);
        assert_eq!(stats.redirects_followed, 1);
    }

    #[test]
    fn remote_error_propagates_without_retry() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);
        let h = std::thread::spawn(move || stub.invoke::<(), u32>("m", &()));
        sentinel.answer(|call| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Err(RemoteError::new("AppError", "no")),
        });
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, RmiError::Remote(e) if e.kind == "AppError"));
    }

    #[test]
    fn all_members_down_propagates_pool_unreachable() {
        // §4.3: "If all attempts to communicate with the elastic object pool
        // fail, the exception is propagated to the client application."
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel, &m1]);
        stub.set_reply_timeout(SimDuration::from_millis(50));
        net.close_endpoint(sentinel.endpoint);
        net.close_endpoint(m1.endpoint);
        let err = stub.invoke::<(), u32>("m", &()).unwrap_err();
        assert!(matches!(err, RmiError::PoolUnreachable { attempts } if attempts >= 2));
    }

    #[test]
    fn stale_responses_are_ignored() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);
        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            v
        });
        // Answer with a bogus call id first, then the real one.
        let d = sentinel.mailbox.recv().unwrap();
        let call = match RmiMessage::decode(&d.payload).unwrap() {
            RmiMessage::Request { call, .. } => call,
            other => panic!("unexpected {other:?}"),
        };
        net.send(
            sentinel.endpoint,
            d.from,
            RmiMessage::Response {
                replayed: false,
                call: call + 999,
                outcome: Ok(erm_transport::to_bytes(&0u32).unwrap()),
            }
            .encode(),
        )
        .unwrap();
        net.send(
            sentinel.endpoint,
            d.from,
            RmiMessage::Response {
                replayed: false,
                call,
                outcome: Ok(erm_transport::to_bytes(&7u32).unwrap()),
            }
            .encode(),
        )
        .unwrap();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn overloaded_member_is_skipped_for_the_next_one() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let m2 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &m2]);
        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, stub.stats())
        });
        m1.answer(|call| RmiMessage::Overloaded {
            call,
            queue_depth: 8,
            retry_after: SimDuration::from_millis(20),
        });
        m2.answer(|call| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Ok(erm_transport::to_bytes(&3u32).unwrap()),
        });
        let (v, stats) = h.join().unwrap();
        assert_eq!(v, 3);
        assert_eq!(stats.overloaded, 1);
        assert_eq!(stats.retries, 1, "overload rejection costs one retry");
    }

    #[test]
    fn all_members_overloaded_surfaces_soonest_retry_hint() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &sentinel]);
        let h = std::thread::spawn(move || stub.invoke::<(), u32>("m", &()));
        m1.answer(|call| RmiMessage::Overloaded {
            call,
            queue_depth: 8,
            retry_after: SimDuration::from_millis(50),
        });
        sentinel.answer(|call| RmiMessage::Overloaded {
            call,
            queue_depth: 3,
            retry_after: SimDuration::from_millis(20),
        });
        let err = h.join().unwrap().unwrap_err();
        assert!(
            matches!(
                err,
                RmiError::Overloaded {
                    attempts: 2,
                    retry_after
                } if retry_after == SimDuration::from_millis(20)
            ),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn limiter_backs_off_on_overloaded_then_throttles() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);
        let limiter = Arc::new(erm_admission::AimdLimiter::new(
            erm_admission::AimdConfig::default(),
        ));
        stub.set_limiter(Arc::clone(&limiter));
        let limit_before = limiter.current_limit();
        let h = std::thread::spawn(move || {
            let first = stub.invoke::<(), u32>("m", &());
            // The Overloaded reply set blocked_until one minute out; the
            // real-time test clock cannot get there, so the gate refuses
            // the second invocation locally without touching the network.
            let second = stub.invoke::<(), u32>("m", &());
            (first, second, stub.stats())
        });
        sentinel.answer(|call| RmiMessage::Overloaded {
            call,
            queue_depth: 64,
            retry_after: SimDuration::from_secs(60),
        });
        let (first, second, stats) = h.join().unwrap();
        assert!(matches!(first, Err(RmiError::Overloaded { .. })));
        assert!(matches!(second, Err(RmiError::Throttled { .. })));
        assert_eq!(stats.throttled, 1);
        assert!(
            limiter.current_limit() < limit_before,
            "congestion must shrink the window ({} -> {})",
            limit_before,
            limiter.current_limit()
        );
        assert_eq!(limiter.in_flight(), 0, "slots released on every path");
    }

    #[test]
    fn limiter_reopens_on_success() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);
        let limiter = Arc::new(erm_admission::AimdLimiter::new(erm_admission::AimdConfig {
            min_limit: 1,
            max_limit: 4,
            increase_milli: 1_000,
            backoff_milli: 500,
        }));
        // Start from a congested window.
        limiter.on_congestion(SimTime::ZERO, None);
        limiter.on_congestion(SimTime::ZERO, None);
        let shrunk = limiter.current_limit();
        stub.set_limiter(Arc::clone(&limiter));
        let h = std::thread::spawn(move || stub.invoke::<(), u32>("m", &()));
        sentinel.answer(|call| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Ok(erm_transport::to_bytes(&1u32).unwrap()),
        });
        h.join().unwrap().unwrap();
        assert!(
            limiter.current_limit() > shrunk,
            "success must re-open the window ({shrunk} -> {})",
            limiter.current_limit()
        );
    }

    #[test]
    fn random_lb_is_seed_deterministic() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut a = connect(&net, &sentinel, &[&sentinel, &m1]);
        a.lb = ClientLb::Random { seed: 42 };
        a.rng = seeded_rng(42);
        let seq_a: Vec<EndpointId> = (0..8).map(|_| a.target_order()[0]).collect();
        let mut b = connect(&net, &sentinel, &[&sentinel, &m1]);
        b.lb = ClientLb::Random { seed: 42 };
        b.rng = seeded_rng(42);
        let seq_b: Vec<EndpointId> = (0..8).map(|_| b.target_order()[0]).collect();
        assert_eq!(seq_a, seq_b);
    }

    /// Polls `stub.poll_complete(id)` until it yields, bounded so a broken
    /// engine fails the test instead of hanging it.
    fn poll_until(stub: &mut Stub, id: u64) -> Result<Vec<u8>, RmiError> {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            if let Some(result) = stub.poll_complete(id) {
                return result;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "invocation {id} never completed"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn pipelined_invocations_complete_out_of_order() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);

        // Three invocations injected back to back, none awaited yet.
        let i0 = stub.invoke_begin("m", &()).unwrap();
        let i1 = stub.invoke_begin("m", &()).unwrap();
        let i2 = stub.invoke_begin("m", &()).unwrap();
        assert_eq!(stub.in_flight(), 3);

        // All three requests are already on the wire — pipelined, not
        // serialized behind each other's replies.
        let mut reqs = Vec::new();
        for _ in 0..3 {
            let d = sentinel
                .mailbox
                .recv_timeout(Duration::from_secs(5))
                .unwrap();
            match RmiMessage::decode(&d.payload).unwrap() {
                RmiMessage::Request { call, .. } => reqs.push((call, d.from)),
                other => panic!("unexpected {other:?}"),
            }
        }

        // Answer the *last* request first.
        let reply = |(call, from): (u64, EndpointId), v: u32| {
            let msg = RmiMessage::Response {
                replayed: false,
                call,
                outcome: Ok(erm_transport::to_bytes(&v).unwrap()),
            };
            net.send(sentinel.endpoint, from, msg.encode()).unwrap();
        };
        reply(reqs[2], 30);
        let v2: u32 = erm_transport::from_bytes(&poll_until(&mut stub, i2).unwrap()).unwrap();
        assert_eq!(v2, 30);
        assert!(
            stub.poll_complete(i0).is_none(),
            "earlier invocation must still be pending"
        );
        assert_eq!(stub.in_flight(), 2);

        reply(reqs[0], 10);
        reply(reqs[1], 20);
        let v0: u32 = erm_transport::from_bytes(&poll_until(&mut stub, i0).unwrap()).unwrap();
        let v1: u32 = erm_transport::from_bytes(&poll_until(&mut stub, i1).unwrap()).unwrap();
        assert_eq!((v0, v1), (10, 20));
        assert_eq!(stub.in_flight(), 0);
        assert_eq!(stub.stats().invocations, 3);
    }

    #[test]
    fn hundreds_of_outstanding_invocations_complete_on_one_endpoint() {
        const N: u32 = 300;
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);

        // An echo member: replies to every request with its own argument.
        let member_net = net.clone();
        let member_ep = sentinel.endpoint;
        let member_mb = sentinel.mailbox;
        let member = std::thread::spawn(move || {
            for _ in 0..N {
                let d = member_mb.recv_timeout(Duration::from_secs(10)).unwrap();
                match RmiMessage::decode(&d.payload).unwrap() {
                    RmiMessage::Request { call, args, .. } => {
                        let msg = RmiMessage::Response {
                            replayed: false,
                            call,
                            outcome: Ok(args),
                        };
                        member_net.send(member_ep, d.from, msg.encode()).unwrap();
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        });

        let mut ids = HashMap::new();
        for k in 0..N {
            let id = stub.invoke_begin("echo", &k).unwrap();
            ids.insert(id, k);
        }
        assert!(stub.in_flight() > 0);

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut done = 0u32;
        while done < N {
            for (id, result) in stub.drain_completed() {
                let expected = ids.remove(&id).expect("unknown invocation completed");
                let got: u32 = erm_transport::from_bytes(&result.unwrap()).unwrap();
                assert_eq!(got, expected, "reply correlated to wrong invocation");
                done += 1;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "only {done}/{N} invocations completed"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        member.join().unwrap();
        assert_eq!(stub.in_flight(), 0);
        assert_eq!(stub.stats().invocations, u64::from(N));
        assert_eq!(
            stub.stats().retries,
            0,
            "no spurious retries under pipelining"
        );
    }

    #[test]
    fn attempt_counter_is_strictly_increasing_across_resend_paths() {
        // Regression for the attempt-counter propagation bug: the stub used
        // to seed `attempt` differently from the registry client and not
        // every resend path bumped it. The invariant now: `attempt: 0` is a
        // stub-internal never-sent sentinel, the first wire attempt is 1,
        // and every resend — reply-timeout retry, crash fast-failover,
        // followed redirect — carries a strictly larger value so skeletons
        // can tell replays from new work.
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let m2 = FakeMember::new(&net);
        let m3 = FakeMember::new(&net);
        let m4 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &m2, &m3]);
        stub.set_reply_timeout(SimDuration::from_millis(100));

        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, stub.stats())
        });

        let recv_request = |m: &FakeMember| {
            let d = m.mailbox.recv_timeout(Duration::from_secs(5)).unwrap();
            match RmiMessage::decode(&d.payload).unwrap() {
                RmiMessage::Request { call, context, .. } => (call, d.from, context.attempt),
                other => panic!("unexpected {other:?}"),
            }
        };

        // Attempt 1: m1 swallows the request -> reply-timeout retry.
        let (_c1, _f1, a1) = recv_request(&m1);
        // Attempt 2: m2 receives it, then crashes mid-wait -> fast failover.
        let (_c2, _f2, a2) = recv_request(&m2);
        net.close_endpoint(m2.endpoint);
        // Attempt 3: m3 refuses with a redirect splicing m4 into the walk.
        let (c3, f3, a3) = recv_request(&m3);
        net.send(
            m3.endpoint,
            f3,
            RmiMessage::Redirected {
                call: c3,
                members: vec![m4.endpoint],
                deadline: SimTime::from_secs(1_000_000),
            }
            .encode(),
        )
        .unwrap();
        // Attempt 4: m4 finally answers.
        let (c4, f4, a4) = recv_request(&m4);
        net.send(
            m4.endpoint,
            f4,
            RmiMessage::Response {
                call: c4,
                outcome: Ok(erm_transport::to_bytes(&6u32).unwrap()),
                replayed: false,
            }
            .encode(),
        )
        .unwrap();

        let (v, stats) = h.join().unwrap();
        assert_eq!(v, 6);
        let attempts = [a1, a2, a3, a4];
        assert_eq!(a1, 1, "first wire attempt is 1, never the 0 sentinel");
        assert!(
            attempts.windows(2).all(|w| w[0] < w[1]),
            "wire attempts must strictly increase: {attempts:?}"
        );
        assert!(stats.retries >= 3, "three resends happened: {stats:?}");
    }

    #[test]
    fn blocking_invoke_coexists_with_pending_pipelined_invocation() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &sentinel]);

        let h = std::thread::spawn(move || {
            // Round-robin: the pipelined invocation goes to m1, the blocking
            // one to the sentinel.
            let a = stub.invoke_begin("m", &()).unwrap();
            let b: u32 = stub.invoke("m", &()).unwrap();
            let va: u32 = erm_transport::from_bytes(&poll_until(&mut stub, a).unwrap()).unwrap();
            (va, b, stub.stats())
        });
        // Reply to the pipelined invocation *first*: the blocking wait must
        // route it to its pending entry, not swallow it as stale.
        m1.answer(|call| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Ok(erm_transport::to_bytes(&7u32).unwrap()),
        });
        sentinel.answer(|call| RmiMessage::Response {
            replayed: false,
            call,
            outcome: Ok(erm_transport::to_bytes(&8u32).unwrap()),
        });
        let (va, b, stats) = h.join().unwrap();
        assert_eq!((va, b), (7, 8));
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.retries, 0);
    }
}
