//! The client stub: local proxy for a whole elastic object pool (§2.3, §4.3).
//!
//! To the client application the pool is a single remote object; the stub is
//! where the pool's plurality is known. It
//!
//! * discovers membership from the sentinel on first contact,
//! * load-balances invocations across members (round-robin or random),
//! * marshals arguments, awaits and unmarshals results,
//! * on send failure, timeout or an explicit `Redirected` reply, retries the
//!   invocation on other members *including the sentinel*, and
//! * propagates the failure to the application only when every member has
//!   been tried.

use std::sync::Arc;
use std::time::Duration;

use erm_admission::AimdLimiter;
use erm_metrics::{TraceEvent, TraceHandle};
use erm_sim::{seeded_rng, SharedClock, SimDuration, SimTime};
use erm_transport::{EndpointId, Mailbox, Network, RecvError};
use rand::rngs::StdRng;
use rand::Rng;
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::{RemoteError, RmiError};
use crate::message::{InvocationContext, RmiMessage};

/// How often the wait loops re-check the (possibly virtual) clock while
/// polling the mailbox.
const POLL_TICK: Duration = Duration::from_millis(1);

/// Client-side load-balancing discipline (§4.3: "randomly or in a
/// round-robin fashion").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientLb {
    /// Rotate through members in order.
    RoundRobin,
    /// Pick a member uniformly at random (seeded, for reproducibility).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Counters the stub keeps about its own behaviour; useful in tests and for
/// application-level metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StubStats {
    /// Completed invocations (success or remote error).
    pub invocations: u64,
    /// Extra attempts beyond the first for any invocation.
    pub retries: u64,
    /// `Redirected` replies followed.
    pub redirects_followed: u64,
    /// Membership refreshes fetched from the sentinel.
    pub refreshes: u64,
    /// Invocations abandoned because their deadline passed.
    pub expired: u64,
    /// `Overloaded` rejections received from members.
    pub overloaded: u64,
    /// Invocations refused locally by the AIMD limiter before any send.
    pub throttled: u64,
    /// Attempts that failed fast because the target endpoint was closed
    /// (member crash), rather than waiting out the reply timeout.
    pub connections_closed: u64,
}

/// A stub bound to one elastic object pool.
///
/// Not `Clone`: like a socket, each client thread opens its own stub (its
/// own endpoint) against the same pool.
pub struct Stub {
    net: Arc<dyn Network>,
    endpoint: EndpointId,
    mailbox: Mailbox,
    sentinel: EndpointId,
    members: Vec<EndpointId>,
    lb: ClientLb,
    rr_next: usize,
    rng: StdRng,
    next_call: u64,
    next_invocation: u64,
    clock: SharedClock,
    reply_timeout: SimDuration,
    invocation_budget: SimDuration,
    trace: TraceHandle,
    stats: StubStats,
    limiter: Option<Arc<AimdLimiter>>,
}

impl std::fmt::Debug for Stub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stub")
            .field("endpoint", &self.endpoint)
            .field("sentinel", &self.sentinel)
            .field("members", &self.members)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Stub {
    /// Connects to the pool whose sentinel listens at `sentinel`, fetching
    /// the member list ("while contacting the sentinel for the first time,
    /// the stub requests the identities of the other skeletons"). All
    /// timeout and deadline arithmetic runs on `clock` — the pool's
    /// simulation clock — so virtual-time tests get deterministic timeouts
    /// and every hop of an invocation agrees on its deadline.
    ///
    /// # Errors
    ///
    /// [`RmiError::SentinelUnreachable`] when the sentinel cannot be reached
    /// or does not answer within the reply timeout.
    pub fn connect(
        net: Arc<dyn Network>,
        endpoint: EndpointId,
        mailbox: Mailbox,
        sentinel: EndpointId,
        lb: ClientLb,
        clock: SharedClock,
    ) -> Result<Stub, RmiError> {
        let rng = match lb {
            ClientLb::Random { seed } => seeded_rng(seed),
            ClientLb::RoundRobin => seeded_rng(0),
        };
        let mut stub = Stub {
            net,
            endpoint,
            mailbox,
            sentinel,
            members: Vec::new(),
            lb,
            rr_next: 0,
            rng,
            next_call: 0,
            next_invocation: 0,
            clock,
            reply_timeout: SimDuration::from_millis(500),
            invocation_budget: SimDuration::from_secs(30),
            trace: TraceHandle::disabled(),
            stats: StubStats::default(),
            limiter: None,
        };
        stub.refresh_members()?;
        Ok(stub)
    }

    /// Overrides the per-attempt reply timeout (default 500 ms of clock
    /// time).
    pub fn set_reply_timeout(&mut self, timeout: SimDuration) {
        self.reply_timeout = timeout;
    }

    /// Overrides the end-to-end invocation budget (default 30 s of clock
    /// time). Each `invoke` gets `now + budget` as its absolute deadline;
    /// retries and followed redirects all run under that one deadline, and
    /// the call fails with [`RmiError::DeadlineExceeded`] when it passes.
    pub fn set_invocation_budget(&mut self, budget: SimDuration) {
        self.invocation_budget = budget;
    }

    /// Routes this stub's trace events into `trace`.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Installs a client-side AIMD concurrency limiter. Every `invoke` must
    /// then acquire a slot before sending: when the limiter's window is full
    /// or it is inside a backoff period the call fails fast with
    /// [`RmiError::Throttled`] instead of adding to a pool that is already
    /// refusing work. `Overloaded` rejections and deadline expiries shrink
    /// the window multiplicatively; completed invocations re-open it
    /// additively. Sharing one `Arc` across a process's stubs gives the
    /// process a single congestion view of the pool.
    pub fn set_limiter(&mut self, limiter: Arc<AimdLimiter>) {
        self.limiter = Some(limiter);
    }

    /// The installed AIMD limiter, if any.
    pub fn limiter(&self) -> Option<&Arc<AimdLimiter>> {
        self.limiter.as_ref()
    }

    /// The member endpoints the stub currently knows.
    pub fn members(&self) -> &[EndpointId] {
        &self.members
    }

    /// Behaviour counters.
    pub fn stats(&self) -> StubStats {
        self.stats
    }

    /// Invokes `method` with `args` on the pool, returning the decoded
    /// result — the ElasticRMI analogue of calling a method on a Java RMI
    /// stub. Unicast: exactly one member executes the invocation.
    ///
    /// # Errors
    ///
    /// * [`RmiError::Remote`] — the method executed and raised,
    /// * [`RmiError::PoolUnreachable`] — every member (sentinel included)
    ///   failed to answer,
    /// * [`RmiError::Encode`]/[`RmiError::Decode`] — marshalling failures.
    pub fn invoke<A, R>(&mut self, method: &str, args: &A) -> Result<R, RmiError>
    where
        A: Serialize + ?Sized,
        R: DeserializeOwned,
    {
        let encoded = erm_transport::to_bytes(args).map_err(|e| RmiError::Encode(e.to_string()))?;
        let outcome = self.invoke_raw(method, encoded)?;
        erm_transport::from_bytes(&outcome).map_err(|e| RmiError::Decode(e.to_string()))
    }

    /// Like [`Stub::invoke`] but with pre-encoded arguments and an encoded
    /// result — the layer generated stubs would call.
    ///
    /// Creates the invocation's [`InvocationContext`] once — id, absolute
    /// deadline (`now + invocation budget`), attempt counter — and re-sends
    /// it with every retry and followed redirect, so every skeleton that
    /// sees the invocation enforces the same deadline.
    ///
    /// # Errors
    ///
    /// As for [`Stub::invoke`], minus `Decode`, plus
    /// [`RmiError::Throttled`] (limiter refused the slot locally) and
    /// [`RmiError::Overloaded`] (every attempted member rejected with a
    /// full admission queue).
    pub fn invoke_raw(&mut self, method: &str, args: Vec<u8>) -> Result<Vec<u8>, RmiError> {
        let invocation = self.next_invocation;
        self.next_invocation += 1;
        let Some(limiter) = self.limiter.clone() else {
            return self.drive(invocation, method, args);
        };
        let now = self.clock.now();
        if !limiter.try_acquire(now) {
            let retry_after = limiter.blocked_for(now);
            self.stats.throttled += 1;
            self.trace.emit(
                now,
                TraceEvent::InvocationThrottled {
                    invocation,
                    retry_after,
                },
            );
            return Err(RmiError::Throttled { retry_after });
        }
        let result = self.drive(invocation, method, args);
        limiter.release();
        // A completed round trip — even one that raised an application
        // error — proves the pool had capacity: widen the window. Congestion
        // signals (Overloaded, deadline expiry) already shrank it inside the
        // retry loop, closest to the evidence.
        if matches!(&result, Ok(_) | Err(RmiError::Remote(_))) {
            limiter.on_success();
        }
        result
    }

    /// The retry loop behind [`Stub::invoke_raw`]: builds the
    /// [`InvocationContext`] and walks the target order until the invocation
    /// completes, expires, or runs out of members.
    fn drive(&mut self, invocation: u64, method: &str, args: Vec<u8>) -> Result<Vec<u8>, RmiError> {
        let now = self.clock.now();
        let mut context = InvocationContext {
            id: invocation,
            deadline: now + self.invocation_budget,
            attempt: 0,
            origin: self.endpoint,
        };
        let mut overload_hint: Option<SimDuration> = None;
        let mut targets = self.target_order();
        let mut attempts = 0u32;
        let mut refreshed = false;
        let mut i = 0;
        while i < targets.len() {
            if context.is_expired(self.clock.now()) {
                return self.expire(&context, attempts);
            }
            let target = targets[i];
            i += 1;
            attempts += 1;
            if attempts > 1 {
                self.stats.retries += 1;
            }
            context.attempt = attempts;
            match self.attempt(target, method, &args, &context) {
                AttemptOutcome::Ok(bytes) => {
                    self.stats.invocations += 1;
                    self.trace.emit(
                        self.clock.now(),
                        TraceEvent::InvocationCompleted {
                            invocation: context.id,
                            attempts,
                            ok: true,
                        },
                    );
                    return Ok(bytes);
                }
                AttemptOutcome::RemoteError(e) => {
                    self.stats.invocations += 1;
                    self.trace.emit(
                        self.clock.now(),
                        TraceEvent::InvocationCompleted {
                            invocation: context.id,
                            attempts,
                            ok: false,
                        },
                    );
                    return Err(RmiError::Remote(e));
                }
                AttemptOutcome::Redirected {
                    mut suggested,
                    deadline,
                } => {
                    self.stats.redirects_followed += 1;
                    // A redirect never extends the budget: the follow-up
                    // attempt inherits whichever deadline is tighter.
                    context.deadline = context.deadline.min(deadline);
                    self.trace.emit(
                        self.clock.now(),
                        TraceEvent::AttemptRedirected {
                            invocation: context.id,
                            attempt: attempts,
                            remaining: context.remaining(self.clock.now()),
                        },
                    );
                    // Try the suggested members next (before our stale list).
                    suggested.retain(|m| !targets[i..].contains(m));
                    for (k, m) in suggested.into_iter().enumerate() {
                        targets.insert(i + k, m);
                    }
                }
                AttemptOutcome::Failed => {
                    self.trace.emit(
                        self.clock.now(),
                        TraceEvent::AttemptFailed {
                            invocation: context.id,
                            attempt: attempts,
                            target: target.0,
                        },
                    );
                    // Member gone or mute. Once, mid-sequence, ask the
                    // sentinel for a fresh view.
                    if !refreshed && self.refresh_members().is_ok() {
                        refreshed = true;
                        for m in self.members.clone() {
                            if !targets.contains(&m) {
                                targets.push(m);
                            }
                        }
                    }
                }
                AttemptOutcome::ConnectionClosed => {
                    // The member's endpoint is definitively gone (crash):
                    // no reply timeout was burned, fail over immediately.
                    self.stats.connections_closed += 1;
                    self.trace.emit(
                        self.clock.now(),
                        TraceEvent::AttemptFailed {
                            invocation: context.id,
                            attempt: attempts,
                            target: target.0,
                        },
                    );
                    if !refreshed && self.refresh_members().is_ok() {
                        refreshed = true;
                        for m in self.members.clone() {
                            if !targets.contains(&m) {
                                targets.push(m);
                            }
                        }
                    }
                    // Fast failover is a stampede risk: every client that
                    // was waiting on the dead member retries at once.
                    // Jittered backoff spreads the herd before it hits the
                    // survivors.
                    if i < targets.len() {
                        self.backoff_before_retry(attempts, &context);
                    }
                }
                AttemptOutcome::Overloaded { retry_after } => {
                    self.stats.overloaded += 1;
                    self.trace.emit(
                        self.clock.now(),
                        TraceEvent::AttemptOverloaded {
                            invocation: context.id,
                            attempt: attempts,
                            target: target.0,
                            retry_after,
                        },
                    );
                    if let Some(limiter) = &self.limiter {
                        limiter.on_congestion(self.clock.now(), Some(retry_after));
                    }
                    // Another member may still have queue room, so keep
                    // walking the target order; remember the soonest
                    // retry hint in case they are all full.
                    overload_hint = Some(overload_hint.map_or(retry_after, |h| h.min(retry_after)));
                }
                AttemptOutcome::Expired => {
                    return self.expire(&context, attempts);
                }
            }
        }
        if context.is_expired(self.clock.now()) {
            return self.expire(&context, attempts);
        }
        match overload_hint {
            Some(retry_after) => Err(RmiError::Overloaded {
                attempts,
                retry_after,
            }),
            None => Err(RmiError::PoolUnreachable { attempts }),
        }
    }

    /// Sleeps a seeded, jittered, exponentially growing interval (1 ms base,
    /// 16 ms cap, uniform in `[step/2, step]`) before retrying after a
    /// connection-closed failure, bounded by the invocation deadline. The
    /// wait runs entirely on the injected clock.
    fn backoff_before_retry(&mut self, attempt: u32, context: &InvocationContext) {
        let step_us = (1_000u64 << u64::from(attempt.min(4))).min(16_000);
        let wait_us = self.rng.gen_range(step_us / 2..=step_us);
        let deadline = (self.clock.now() + SimDuration::from_micros(wait_us)).min(context.deadline);
        let mut wait = ClockWait::new(deadline);
        while matches!(wait.poll(self.clock.as_ref()), WaitState::Waiting) {
            std::thread::sleep(POLL_TICK);
        }
    }

    /// Records and reports deadline expiry for `context`.
    fn expire(&mut self, context: &InvocationContext, attempts: u32) -> Result<Vec<u8>, RmiError> {
        self.stats.expired += 1;
        // An invocation that ran out its whole budget is congestion too:
        // the pool could not serve it in time.
        if let Some(limiter) = &self.limiter {
            limiter.on_congestion(self.clock.now(), None);
        }
        self.trace.emit(
            self.clock.now(),
            TraceEvent::InvocationExpired {
                invocation: context.id,
                attempts,
            },
        );
        Err(RmiError::DeadlineExceeded { attempts })
    }

    /// The attempt order for one invocation: the LB-chosen member first,
    /// then the remaining members, then the sentinel (always last resort,
    /// §4.3: "retries the invocation on other objects including the
    /// sentinel").
    fn target_order(&mut self) -> Vec<EndpointId> {
        let mut order: Vec<EndpointId> = Vec::with_capacity(self.members.len() + 1);
        if !self.members.is_empty() {
            let start = match self.lb {
                ClientLb::RoundRobin => {
                    let s = self.rr_next % self.members.len();
                    self.rr_next = self.rr_next.wrapping_add(1);
                    s
                }
                ClientLb::Random { .. } => self.rng.gen_range(0..self.members.len()),
            };
            for k in 0..self.members.len() {
                order.push(self.members[(start + k) % self.members.len()]);
            }
        }
        if !order.contains(&self.sentinel) {
            order.push(self.sentinel);
        }
        order
    }

    fn attempt(
        &mut self,
        target: EndpointId,
        method: &str,
        args: &[u8],
        context: &InvocationContext,
    ) -> AttemptOutcome {
        let call = self.next_call;
        self.next_call += 1;
        let msg = RmiMessage::Request {
            call,
            context: *context,
            method: method.to_string(),
            args: args.to_vec(),
        };
        self.trace.emit(
            self.clock.now(),
            TraceEvent::AttemptStarted {
                invocation: context.id,
                attempt: context.attempt,
                target: target.0,
                deadline: context.deadline,
            },
        );
        if self.net.send(self.endpoint, target, msg.encode()).is_err() {
            // The transport knows the endpoint is gone — not a silent
            // timeout, an immediate failover signal.
            return AttemptOutcome::ConnectionClosed;
        }
        // The attempt waits until its reply timeout or the invocation's
        // deadline, whichever comes first — on the injected clock.
        let attempt_deadline = (self.clock.now() + self.reply_timeout).min(context.deadline);
        let mut wait = ClockWait::new(attempt_deadline);
        loop {
            match wait.poll(self.clock.as_ref()) {
                WaitState::Waiting => {}
                WaitState::DeadlineReached => {
                    return if context.is_expired(self.clock.now()) {
                        AttemptOutcome::Expired
                    } else {
                        AttemptOutcome::Failed
                    };
                }
            }
            // A member that died *after* accepting the request never
            // replies; detecting the closed endpoint here fails over
            // immediately instead of burning the whole reply timeout.
            if !self.net.endpoint_open(target) {
                return AttemptOutcome::ConnectionClosed;
            }
            match self.mailbox.recv_timeout(POLL_TICK) {
                Ok(datagram) => match RmiMessage::decode(&datagram.payload) {
                    Ok(RmiMessage::Response { call: c, outcome }) if c == call => {
                        return match outcome {
                            Ok(bytes) => AttemptOutcome::Ok(bytes),
                            Err(e) => AttemptOutcome::RemoteError(e),
                        };
                    }
                    Ok(RmiMessage::Redirected {
                        call: c,
                        members,
                        deadline,
                    }) if c == call => {
                        return AttemptOutcome::Redirected {
                            suggested: members,
                            deadline,
                        };
                    }
                    Ok(RmiMessage::Overloaded {
                        call: c,
                        retry_after,
                        ..
                    }) if c == call => {
                        return AttemptOutcome::Overloaded { retry_after };
                    }
                    // Stale replies to earlier timed-out calls, pool info
                    // broadcasts, etc.: skip.
                    _ => continue,
                },
                Err(RecvError::Timeout) => continue,
                Err(RecvError::Closed) => return AttemptOutcome::Failed,
            }
        }
    }

    /// Fetches the member list from the sentinel.
    ///
    /// # Errors
    ///
    /// [`RmiError::SentinelUnreachable`] when no `PoolInfo` arrives in time.
    pub fn refresh_members(&mut self) -> Result<(), RmiError> {
        self.stats.refreshes += 1;
        if self
            .net
            .send(
                self.endpoint,
                self.sentinel,
                RmiMessage::PoolInfoRequest.encode(),
            )
            .is_err()
        {
            return Err(RmiError::SentinelUnreachable(self.sentinel));
        }
        let mut wait = ClockWait::new(self.clock.now() + self.reply_timeout);
        loop {
            if matches!(wait.poll(self.clock.as_ref()), WaitState::DeadlineReached) {
                return Err(RmiError::SentinelUnreachable(self.sentinel));
            }
            match self.mailbox.recv_timeout(POLL_TICK) {
                Ok(datagram) => {
                    if let Ok(RmiMessage::PoolInfo {
                        sentinel, members, ..
                    }) = RmiMessage::decode(&datagram.payload)
                    {
                        self.sentinel = sentinel;
                        if !members.is_empty() {
                            self.members = members;
                            self.rr_next = 0;
                        }
                        return Ok(());
                    }
                }
                Err(RecvError::Timeout) => continue,
                Err(RecvError::Closed) => return Err(RmiError::SentinelUnreachable(self.sentinel)),
            }
        }
    }
}

/// A wait bounded by a deadline on the injected (possibly virtual) clock.
///
/// Purely clock-driven: protocol semantics (timeouts, budgets, backoff)
/// live entirely in sim time, so a run on a `VirtualClock` is decided by
/// clock advances alone and a run on the `SystemClock` by wall time — the
/// two domains never mix. (An earlier version kept a wall-clock backstop
/// "in case nobody advances the virtual clock"; that blurred every
/// timeout's semantics and made TCP runs nondeterministic, so it is gone:
/// a harness that pauses its clock forever gets the hang it asked for.)
struct ClockWait {
    deadline: SimTime,
}

enum WaitState {
    Waiting,
    DeadlineReached,
}

impl ClockWait {
    fn new(deadline: SimTime) -> Self {
        ClockWait { deadline }
    }

    fn poll(&mut self, clock: &dyn erm_sim::Clock) -> WaitState {
        if clock.now() >= self.deadline {
            WaitState::DeadlineReached
        } else {
            WaitState::Waiting
        }
    }
}

enum AttemptOutcome {
    Ok(Vec<u8>),
    RemoteError(RemoteError),
    Redirected {
        suggested: Vec<EndpointId>,
        deadline: SimTime,
    },
    Overloaded {
        retry_after: SimDuration,
    },
    /// Send failed or the endpoint closed mid-wait: the member is
    /// definitively gone, retry immediately (with jittered backoff).
    ConnectionClosed,
    /// Silent timeout: the member may be slow, mute, or partitioned.
    Failed,
    Expired,
}

// Keep RemoteError import used in non-test builds.
const _: fn(&AttemptOutcome) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use erm_sim::SystemClock;
    use erm_transport::{Host, InProcNetwork};

    /// A scripted fake member that answers from a queue of behaviours.
    struct FakeMember {
        net: InProcNetwork,
        endpoint: EndpointId,
        mailbox: Mailbox,
    }

    impl FakeMember {
        fn new(net: &InProcNetwork) -> Self {
            let (endpoint, mailbox) = net.open();
            FakeMember {
                net: net.clone(),
                endpoint,
                mailbox,
            }
        }

        /// Answer the next queued request with `f(call) -> RmiMessage`.
        /// Discovery requests arriving in between are served transparently.
        fn answer(&self, f: impl Fn(u64) -> RmiMessage) {
            loop {
                let d = self
                    .mailbox
                    .recv_timeout(Duration::from_secs(5))
                    .expect("request expected");
                match RmiMessage::decode(&d.payload).unwrap() {
                    RmiMessage::Request { call, .. } => {
                        self.net
                            .send(self.endpoint, d.from, f(call).encode())
                            .unwrap();
                        return;
                    }
                    RmiMessage::PoolInfoRequest => {
                        let info = RmiMessage::PoolInfo {
                            epoch: 99,
                            sentinel: self.endpoint,
                            members: Vec::new(),
                        };
                        self.net.send(self.endpoint, d.from, info.encode()).unwrap();
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    fn pool_info(sentinel: &FakeMember, members: &[&FakeMember]) -> RmiMessage {
        RmiMessage::PoolInfo {
            epoch: 1,
            sentinel: sentinel.endpoint,
            members: members.iter().map(|m| m.endpoint).collect(),
        }
    }

    fn connect(net: &InProcNetwork, sentinel: &FakeMember, members: &[&FakeMember]) -> Stub {
        let (client_ep, client_mb) = net.open();
        let net_arc: Arc<dyn Network> = Arc::new(net.clone());
        let info = pool_info(sentinel, members);
        let s_ep = sentinel.endpoint;
        // Connect blocks on discovery, so run it in a thread and serve the
        // PoolInfoRequest from here.
        let handle = std::thread::spawn(move || {
            Stub::connect(
                net_arc,
                client_ep,
                client_mb,
                s_ep,
                ClientLb::RoundRobin,
                Arc::new(SystemClock::new()),
            )
        });
        let d = sentinel.mailbox.recv().expect("discovery request");
        net.send(sentinel.endpoint, d.from, info.encode()).unwrap();
        handle.join().unwrap().expect("connect succeeds")
    }

    #[test]
    fn connect_discovers_members() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let stub = connect(&net, &sentinel, &[&sentinel, &m1]);
        assert_eq!(stub.members(), &[sentinel.endpoint, m1.endpoint]);
    }

    #[test]
    fn invoke_round_robins_across_members() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel, &m1]);

        // First invocation goes to member 0 (sentinel), second to member 1.
        let h = std::thread::spawn(move || {
            let a: u32 = stub.invoke("m", &()).unwrap();
            let b: u32 = stub.invoke("m", &()).unwrap();
            (a, b, stub.stats())
        });
        let ok = |call: u64| RmiMessage::Response {
            call,
            outcome: Ok(erm_transport::to_bytes(&1u32).unwrap()),
        };
        sentinel.answer(ok);
        m1.answer(ok);
        let (a, b, stats) = h.join().unwrap();
        assert_eq!((a, b), (1, 1));
        assert_eq!(stats.invocations, 2);
        assert_eq!(stats.retries, 0);
    }

    #[test]
    fn invoke_fails_over_to_next_member_on_crash() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &sentinel]);
        stub.set_reply_timeout(SimDuration::from_millis(200));
        // Kill m1: sends to it now fail immediately.
        net.close_endpoint(m1.endpoint);
        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, stub.stats())
        });
        sentinel.answer(|call| RmiMessage::Response {
            call,
            outcome: Ok(erm_transport::to_bytes(&9u32).unwrap()),
        });
        let (v, stats) = h.join().unwrap();
        assert_eq!(v, 9);
        assert!(stats.retries >= 1, "failover must count as retry");
        assert_eq!(
            stats.connections_closed, 1,
            "a dead endpoint is a connection-closed failure, not a timeout"
        );
    }

    #[test]
    fn endpoint_closed_mid_wait_fails_over_without_burning_reply_timeout() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &sentinel]);
        // A timeout long enough that burning it would fail the elapsed
        // assertion below by an order of magnitude.
        stub.set_reply_timeout(SimDuration::from_secs(10));
        let h = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, start.elapsed(), stub.stats())
        });
        // m1 accepts the request, then crashes before replying.
        let d = m1.mailbox.recv().expect("request reaches m1");
        assert!(matches!(
            RmiMessage::decode(&d.payload).unwrap(),
            RmiMessage::Request { .. }
        ));
        net.close_endpoint(m1.endpoint);
        sentinel.answer(|call| RmiMessage::Response {
            call,
            outcome: Ok(erm_transport::to_bytes(&4u32).unwrap()),
        });
        let (v, elapsed, stats) = h.join().unwrap();
        assert_eq!(v, 4);
        assert!(
            elapsed < Duration::from_secs(5),
            "fail-fast, not a 10 s timeout burn: {elapsed:?}"
        );
        assert_eq!(stats.connections_closed, 1);
        assert!(stats.retries >= 1);
    }

    #[test]
    fn retry_backoff_is_jittered_and_seed_deterministic() {
        let draws = |seed: u64| {
            let mut rng = seeded_rng(seed);
            // Mirror backoff_before_retry's draw for the first 4 attempts.
            (1..=4u32)
                .map(|attempt| {
                    let step_us = (1_000u64 << u64::from(attempt.min(4))).min(16_000);
                    rng.gen_range(step_us / 2..=step_us)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7), "same seed, same backoff schedule");
        assert_ne!(draws(7), draws(8), "different seeds de-synchronize");
        for (attempt, wait) in draws(7).iter().enumerate() {
            let step = (1_000u64 << (attempt as u64 + 1)).min(16_000);
            assert!((step / 2..=step).contains(wait));
        }
    }

    #[test]
    fn redirected_reply_is_followed() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let m2 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1]);
        let m2_ep = m2.endpoint;
        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, stub.stats())
        });
        m1.answer(move |call| RmiMessage::Redirected {
            call,
            members: vec![m2_ep],
            deadline: SimTime::from_secs(1_000_000),
        });
        m2.answer(|call| RmiMessage::Response {
            call,
            outcome: Ok(erm_transport::to_bytes(&5u32).unwrap()),
        });
        let (v, stats) = h.join().unwrap();
        assert_eq!(v, 5);
        assert_eq!(stats.redirects_followed, 1);
    }

    #[test]
    fn remote_error_propagates_without_retry() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);
        let h = std::thread::spawn(move || stub.invoke::<(), u32>("m", &()));
        sentinel.answer(|call| RmiMessage::Response {
            call,
            outcome: Err(RemoteError::new("AppError", "no")),
        });
        let err = h.join().unwrap().unwrap_err();
        assert!(matches!(err, RmiError::Remote(e) if e.kind == "AppError"));
    }

    #[test]
    fn all_members_down_propagates_pool_unreachable() {
        // §4.3: "If all attempts to communicate with the elastic object pool
        // fail, the exception is propagated to the client application."
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel, &m1]);
        stub.set_reply_timeout(SimDuration::from_millis(50));
        net.close_endpoint(sentinel.endpoint);
        net.close_endpoint(m1.endpoint);
        let err = stub.invoke::<(), u32>("m", &()).unwrap_err();
        assert!(matches!(err, RmiError::PoolUnreachable { attempts } if attempts >= 2));
    }

    #[test]
    fn stale_responses_are_ignored() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);
        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            v
        });
        // Answer with a bogus call id first, then the real one.
        let d = sentinel.mailbox.recv().unwrap();
        let call = match RmiMessage::decode(&d.payload).unwrap() {
            RmiMessage::Request { call, .. } => call,
            other => panic!("unexpected {other:?}"),
        };
        net.send(
            sentinel.endpoint,
            d.from,
            RmiMessage::Response {
                call: call + 999,
                outcome: Ok(erm_transport::to_bytes(&0u32).unwrap()),
            }
            .encode(),
        )
        .unwrap();
        net.send(
            sentinel.endpoint,
            d.from,
            RmiMessage::Response {
                call,
                outcome: Ok(erm_transport::to_bytes(&7u32).unwrap()),
            }
            .encode(),
        )
        .unwrap();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn overloaded_member_is_skipped_for_the_next_one() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let m2 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &m2]);
        let h = std::thread::spawn(move || {
            let v: u32 = stub.invoke("m", &()).unwrap();
            (v, stub.stats())
        });
        m1.answer(|call| RmiMessage::Overloaded {
            call,
            queue_depth: 8,
            retry_after: SimDuration::from_millis(20),
        });
        m2.answer(|call| RmiMessage::Response {
            call,
            outcome: Ok(erm_transport::to_bytes(&3u32).unwrap()),
        });
        let (v, stats) = h.join().unwrap();
        assert_eq!(v, 3);
        assert_eq!(stats.overloaded, 1);
        assert_eq!(stats.retries, 1, "overload rejection costs one retry");
    }

    #[test]
    fn all_members_overloaded_surfaces_soonest_retry_hint() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&m1, &sentinel]);
        let h = std::thread::spawn(move || stub.invoke::<(), u32>("m", &()));
        m1.answer(|call| RmiMessage::Overloaded {
            call,
            queue_depth: 8,
            retry_after: SimDuration::from_millis(50),
        });
        sentinel.answer(|call| RmiMessage::Overloaded {
            call,
            queue_depth: 3,
            retry_after: SimDuration::from_millis(20),
        });
        let err = h.join().unwrap().unwrap_err();
        assert!(
            matches!(
                err,
                RmiError::Overloaded {
                    attempts: 2,
                    retry_after
                } if retry_after == SimDuration::from_millis(20)
            ),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn limiter_backs_off_on_overloaded_then_throttles() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);
        let limiter = Arc::new(erm_admission::AimdLimiter::new(
            erm_admission::AimdConfig::default(),
        ));
        stub.set_limiter(Arc::clone(&limiter));
        let limit_before = limiter.current_limit();
        let h = std::thread::spawn(move || {
            let first = stub.invoke::<(), u32>("m", &());
            // The Overloaded reply set blocked_until one minute out; the
            // real-time test clock cannot get there, so the gate refuses
            // the second invocation locally without touching the network.
            let second = stub.invoke::<(), u32>("m", &());
            (first, second, stub.stats())
        });
        sentinel.answer(|call| RmiMessage::Overloaded {
            call,
            queue_depth: 64,
            retry_after: SimDuration::from_secs(60),
        });
        let (first, second, stats) = h.join().unwrap();
        assert!(matches!(first, Err(RmiError::Overloaded { .. })));
        assert!(matches!(second, Err(RmiError::Throttled { .. })));
        assert_eq!(stats.throttled, 1);
        assert!(
            limiter.current_limit() < limit_before,
            "congestion must shrink the window ({} -> {})",
            limit_before,
            limiter.current_limit()
        );
        assert_eq!(limiter.in_flight(), 0, "slots released on every path");
    }

    #[test]
    fn limiter_reopens_on_success() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let mut stub = connect(&net, &sentinel, &[&sentinel]);
        let limiter = Arc::new(erm_admission::AimdLimiter::new(erm_admission::AimdConfig {
            min_limit: 1,
            max_limit: 4,
            increase_milli: 1_000,
            backoff_milli: 500,
        }));
        // Start from a congested window.
        limiter.on_congestion(SimTime::ZERO, None);
        limiter.on_congestion(SimTime::ZERO, None);
        let shrunk = limiter.current_limit();
        stub.set_limiter(Arc::clone(&limiter));
        let h = std::thread::spawn(move || stub.invoke::<(), u32>("m", &()));
        sentinel.answer(|call| RmiMessage::Response {
            call,
            outcome: Ok(erm_transport::to_bytes(&1u32).unwrap()),
        });
        h.join().unwrap().unwrap();
        assert!(
            limiter.current_limit() > shrunk,
            "success must re-open the window ({shrunk} -> {})",
            limiter.current_limit()
        );
    }

    #[test]
    fn random_lb_is_seed_deterministic() {
        let net = InProcNetwork::new();
        let sentinel = FakeMember::new(&net);
        let m1 = FakeMember::new(&net);
        let mut a = connect(&net, &sentinel, &[&sentinel, &m1]);
        a.lb = ClientLb::Random { seed: 42 };
        a.rng = seeded_rng(42);
        let seq_a: Vec<EndpointId> = (0..8).map(|_| a.target_order()[0]).collect();
        let mut b = connect(&net, &sentinel, &[&sentinel, &m1]);
        b.lb = ClientLb::Random { seed: 42 };
        b.rng = seeded_rng(42);
        let seq_b: Vec<EndpointId> = (0..8).map(|_| b.target_order()[0]).collect();
        assert_eq!(seq_a, seq_b);
    }
}
