//! Shared state over the external store (paper §4.1, Fig. 6).
//!
//! The ElasticRMI preprocessor "translates reads and writes of instance and
//! static fields into get(...) and put(...) method calls" on the store,
//! keying field `x` of class `C1` as `"C1$x"`, and translates `synchronized`
//! methods into acquisition of a per-class lock named after the class. This
//! module is that translation, as a library.

use std::marker::PhantomData;
use std::sync::Arc;

use erm_kvstore::{LockOwner, Store};
use erm_sim::{Clock, SimDuration};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// The store key for field `field` of class `class` — the paper's `C1$x`
/// mangling.
pub fn field_key(class: &str, field: &str) -> String {
    format!("{class}${field}")
}

/// A typed handle to one shared field of an elastic class.
///
/// Every member of the pool constructing a `SharedField` for the same class
/// and field name reads and writes the same store cell, which is what makes
/// the pool "appear to the client as a single remote object" (§2.2).
#[derive(Debug)]
pub struct SharedField<T> {
    store: Arc<Store>,
    key: String,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for SharedField<T> {
    fn clone(&self) -> Self {
        SharedField {
            store: Arc::clone(&self.store),
            key: self.key.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T: Serialize + DeserializeOwned> SharedField<T> {
    /// Creates the handle for `class.field` on `store`.
    pub fn new(store: Arc<Store>, class: &str, field: &str) -> Self {
        SharedField {
            store,
            key: field_key(class, field),
            _marker: PhantomData,
        }
    }

    /// The underlying store key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Reads the field; `None` if it was never written.
    ///
    /// # Panics
    ///
    /// Panics if the stored bytes do not decode as `T` — that is a schema
    /// mismatch between pool members, a programming error.
    pub fn get(&self) -> Option<T> {
        self.store.get(&self.key).map(|v| {
            erm_transport::from_bytes(&v.value)
                .unwrap_or_else(|e| panic!("shared field {} corrupt: {e}", self.key))
        })
    }

    /// Writes the field.
    pub fn set(&self, value: &T) {
        let bytes = erm_transport::to_bytes(value).expect("shared field value encodes");
        self.store.put(&self.key, bytes);
    }

    /// Atomic read-modify-write via compare-and-put retry. `init` supplies
    /// the value when the field is absent; `f`'s return value is passed
    /// through. Lock-free: concurrent updates retry rather than block.
    pub fn update<R>(&self, init: impl Fn() -> T, mut f: impl FnMut(&mut T) -> R) -> R {
        loop {
            let current = self.store.get(&self.key);
            let (expected, mut value) = match &current {
                Some(v) => (
                    Some(v.version),
                    erm_transport::from_bytes::<T>(&v.value)
                        .unwrap_or_else(|e| panic!("shared field {} corrupt: {e}", self.key)),
                ),
                None => (None, init()),
            };
            let out = f(&mut value);
            let bytes = erm_transport::to_bytes(&value).expect("shared field value encodes");
            if self
                .store
                .compare_and_put(&self.key, expected, bytes)
                .is_ok()
            {
                return out;
            }
        }
    }
}

/// Executes `body` under the class-wide lock (`ERMI.lock(class)`), blocking
/// until acquired. Mirrors a `synchronized` elastic method: mutual
/// exclusion with respect to every other synchronized method of the same
/// class across the whole pool — and, like the paper, *not* an ACID
/// transaction.
///
/// The wait is clock-aware: it parks on the lock table's condition
/// variable (woken by every release and by crash reclamation through
/// [`Store::release_owner`]) and re-reads the injected clock for TTL
/// expiry. Earlier versions slept real time between `try_lock` attempts
/// while the TTL was measured on the injected clock — under a
/// [`erm_sim::VirtualClock`] a crashed owner's lock then never expired and
/// the waiter livelocked.
///
/// # Panics
///
/// Panics if `owner` is fenced: a crash-reclaimed member re-entering a
/// critical section under its old identity is a protocol violation, and
/// running `body` without the lock would break mutual exclusion.
pub fn synchronized<R>(
    store: &Store,
    class: &str,
    owner: LockOwner,
    clock: &dyn Clock,
    ttl: SimDuration,
    body: impl FnOnce() -> R,
) -> R {
    assert!(
        store.lock_blocking(class, owner, clock, ttl),
        "fenced {owner} must not enter synchronized({class})"
    );
    // Run the body and always release, even if it panics, so a poisoned
    // member cannot wedge the whole class. Releasing through `unlock_at`
    // records the hold time when lock metrics are installed.
    struct Unlock<'a> {
        store: &'a Store,
        class: &'a str,
        owner: LockOwner,
        clock: &'a dyn Clock,
    }
    impl Drop for Unlock<'_> {
        fn drop(&mut self) {
            let _ = self
                .store
                .unlock_at(self.class, self.owner, self.clock.now());
        }
    }
    let _guard = Unlock {
        store,
        class,
        owner,
        clock,
    };
    body()
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_kvstore::StoreConfig;
    use erm_sim::VirtualClock;

    fn store() -> Arc<Store> {
        Arc::new(Store::new(StoreConfig::default()))
    }

    #[test]
    fn field_key_matches_paper_mangling() {
        assert_eq!(field_key("C1", "x"), "C1$x");
    }

    #[test]
    fn set_get_roundtrip_typed() {
        let f: SharedField<Vec<String>> = SharedField::new(store(), "Cache", "keys");
        assert_eq!(f.get(), None);
        f.set(&vec!["a".into(), "b".into()]);
        assert_eq!(f.get(), Some(vec!["a".to_string(), "b".to_string()]));
    }

    #[test]
    fn distinct_fields_do_not_alias() {
        let s = store();
        let x: SharedField<u32> = SharedField::new(Arc::clone(&s), "C1", "x");
        let z: SharedField<u32> = SharedField::new(Arc::clone(&s), "C1", "z");
        x.set(&1);
        z.set(&2);
        assert_eq!((x.get(), z.get()), (Some(1), Some(2)));
    }

    #[test]
    fn update_initializes_absent_field() {
        let f: SharedField<u64> = SharedField::new(store(), "C1", "count");
        let out = f.update(
            || 100,
            |v| {
                *v += 1;
                *v
            },
        );
        assert_eq!(out, 101);
        assert_eq!(f.get(), Some(101));
    }

    #[test]
    fn concurrent_updates_never_lose_increments() {
        let s = store();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let f: SharedField<u64> = SharedField::new(s, "C1", "n");
                for _ in 0..500 {
                    f.update(|| 0, |v| *v += 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let f: SharedField<u64> = SharedField::new(s, "C1", "n");
        assert_eq!(f.get(), Some(4000));
    }

    #[test]
    fn synchronized_provides_mutual_exclusion() {
        let s = store();
        let clock = VirtualClock::new();
        let ttl = SimDuration::from_secs(60);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&s);
            let clock = clock.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    synchronized(&s, "C1", LockOwner::new(t), &clock, ttl, || {
                        // Unsynchronized read-modify-write: only safe because
                        // the class lock serializes these bodies.
                        let f: SharedField<u64> = SharedField::new(Arc::clone(&s), "C1", "rmw");
                        let v = f.get().unwrap_or(0);
                        f.set(&(v + 1));
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let f: SharedField<u64> = SharedField::new(s, "C1", "rmw");
        assert_eq!(
            f.get(),
            Some(800),
            "lost updates imply broken mutual exclusion"
        );
    }

    #[test]
    fn synchronized_waiter_wakes_when_crashed_owner_is_fenced() {
        // Regression: the waiter used to spin on real `thread::sleep`s while
        // the lock TTL was measured on the injected clock. Under a paused
        // VirtualClock a crashed owner's lock never expired, so the waiter
        // livelocked until the process was killed. The clock-aware wait must
        // complete as soon as the pool fences the crashed owner, with the
        // virtual clock never moving at all.
        let s = store();
        let clock = VirtualClock::new(); // paused: nobody advances it
        let ttl = SimDuration::from_secs(3600);
        let crashed = LockOwner::new(1);
        assert!(s.try_lock("C1", crashed, clock.now(), ttl));
        let s2 = Arc::clone(&s);
        let clock2 = clock.clone();
        let waiter = std::thread::spawn(move || {
            synchronized(&s2, "C1", LockOwner::new(2), &clock2, ttl, || 42)
        });
        // Let the waiter actually block on the held lock first.
        while s.lock_stats().failures == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        // Crash reclamation: fence the dead owner, free its locks.
        assert_eq!(
            s.release_owner(crashed, clock.now()),
            vec!["C1".to_string()]
        );
        assert_eq!(waiter.join().unwrap(), 42);
        assert!(s.fenced_epoch(crashed).is_some());
    }

    #[test]
    fn synchronized_waiter_observes_virtual_ttl_expiry() {
        // The other half of the clock-awareness contract: no release ever
        // happens, but advancing the *virtual* clock past the holder's TTL
        // must unblock the waiter (the old real-time backoff would have
        // spun forever since it never re-read an advanced clock under a
        // lock that "expired" only in sim time).
        let s = store();
        let clock = VirtualClock::new();
        let ttl = SimDuration::from_secs(30);
        let dead = LockOwner::new(1);
        assert!(s.try_lock("C1", dead, clock.now(), ttl));
        let s2 = Arc::clone(&s);
        let clock2 = clock.clone();
        let waiter = std::thread::spawn(move || {
            synchronized(&s2, "C1", LockOwner::new(2), &clock2, ttl, || 7)
        });
        while s.lock_stats().failures == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        clock.advance(SimDuration::from_secs(31));
        assert_eq!(waiter.join().unwrap(), 7);
        assert_eq!(
            s.lock_stats().expirations,
            1,
            "the lock was stolen, not released"
        );
    }

    #[test]
    fn synchronized_releases_on_panic() {
        let s = store();
        let clock = VirtualClock::new();
        let ttl = SimDuration::from_secs(60);
        let s2 = Arc::clone(&s);
        let clock2 = clock.clone();
        let _ = std::thread::spawn(move || {
            synchronized(&s2, "C1", LockOwner::new(1), &clock2, ttl, || {
                panic!("method body exploded");
            })
        })
        .join();
        // Lock must be free again.
        assert!(s.try_lock("C1", LockOwner::new(2), clock.now(), ttl));
    }
}
