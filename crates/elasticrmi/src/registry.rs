//! An RMI registry: names bound to elastic pool sentinels.
//!
//! Java RMI clients bootstrap through `rmiregistry`; ElasticRMI keeps that
//! workflow (§2: "the same simplicity and ease of use of the Java RMI"), so
//! this module provides the equivalent: a small name service where servers
//! [`bind`](RegistryClient::bind) the sentinel endpoint of a pool under a
//! string name and clients [`lookup`](RegistryClient::lookup) it before
//! connecting a [`crate::Stub`].
//!
//! The registry speaks the ordinary invocation plane
//! ([`crate::RmiMessage::Request`]/`Response`), so it works over any
//! [`Network`] — in-process or TCP — without new message types.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use elasticrmi::registry::{RegistryClient, RegistryServer};
//! use erm_transport::{EndpointId, InProcNetwork};
//!
//! let net = InProcNetwork::new();
//! let server = RegistryServer::spawn(Arc::new(net.clone()));
//!
//! let mut client = RegistryClient::connect(Arc::new(net.clone()), server.endpoint());
//! assert!(client.bind("bank", EndpointId(42)).unwrap());
//! assert_eq!(client.lookup("bank").unwrap(), Some(EndpointId(42)));
//! server.shutdown();
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use erm_semantics::Semantics;
use erm_sim::{SharedClock, SimDuration, SystemClock};
use erm_transport::{EndpointId, Host, Mailbox, Network, RecvError};

use crate::error::{RemoteError, RmiError};
use crate::message::{InvocationContext, RmiMessage};

/// A running registry server.
///
/// Dropping the handle shuts the server down.
pub struct RegistryServer {
    endpoint: EndpointId,
    net: Arc<dyn Host>,
    join: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RegistryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryServer")
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

impl RegistryServer {
    /// Starts a registry on a fresh endpoint of `net`.
    pub fn spawn(net: Arc<dyn Host>) -> RegistryServer {
        let (endpoint, mailbox) = net.open();
        let send_net: Arc<dyn Network> = Arc::clone(&net) as Arc<dyn Network>;
        let join = std::thread::Builder::new()
            .name("erm-registry".to_string())
            .spawn(move || serve(endpoint, mailbox, send_net))
            .expect("spawn registry thread");
        RegistryServer {
            endpoint,
            net,
            join: Some(join),
        }
    }

    /// The endpoint clients should talk to.
    pub fn endpoint(&self) -> EndpointId {
        self.endpoint
    }

    /// Stops the server. Idempotent; also performed on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(join) = self.join.take() {
            self.net.close(self.endpoint);
            let _ = join.join();
        }
    }
}

impl Drop for RegistryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve(endpoint: EndpointId, mailbox: Mailbox, net: Arc<dyn Network>) {
    let mut bindings: BTreeMap<String, EndpointId> = BTreeMap::new();
    loop {
        let datagram = match mailbox.recv_timeout(Duration::from_millis(50)) {
            Ok(d) => d,
            Err(RecvError::Timeout) => continue,
            Err(RecvError::Closed) => return,
        };
        // The registry has no pool clock, so it serves every request and
        // leaves deadline enforcement to the caller.
        let Ok(RmiMessage::Request {
            call,
            context: _,
            method,
            args,
        }) = RmiMessage::decode(&datagram.payload)
        else {
            continue;
        };
        let outcome: Result<Vec<u8>, RemoteError> = match method.as_str() {
            "bind" => crate::api::decode_args::<(String, EndpointId)>(&method, &args).map(
                |(name, target)| {
                    let fresh = !bindings.contains_key(&name);
                    bindings.insert(name, target);
                    crate::api::encode_result(&fresh).expect("bool encodes")
                },
            ),
            "unbind" => crate::api::decode_args::<String>(&method, &args).map(|name| {
                let existed = bindings.remove(&name).is_some();
                crate::api::encode_result(&existed).expect("bool encodes")
            }),
            "lookup" => crate::api::decode_args::<String>(&method, &args).map(|name| {
                crate::api::encode_result(&bindings.get(&name).copied()).expect("option encodes")
            }),
            "list" => {
                let names: Vec<&String> = bindings.keys().collect();
                crate::api::encode_result(&names)
            }
            other => Err(RemoteError::no_such_method(other)),
        };
        let _ = net.send(
            endpoint,
            datagram.from,
            RmiMessage::Response {
                call,
                outcome,
                replayed: false,
            }
            .encode(),
        );
    }
}

/// A client handle to a [`RegistryServer`].
pub struct RegistryClient {
    net: Arc<dyn Network>,
    endpoint: EndpointId,
    mailbox: Mailbox,
    registry: EndpointId,
    next_call: u64,
    clock: SharedClock,
    timeout: Duration,
}

impl std::fmt::Debug for RegistryClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RegistryClient")
            .field("registry", &self.registry)
            .finish_non_exhaustive()
    }
}

impl RegistryClient {
    /// Opens a client endpoint on `net` aimed at the registry at `registry`.
    /// Requests carry deadlines from a system clock; use
    /// [`RegistryClient::with_clock`] to stamp them from a shared
    /// (possibly virtual) clock instead.
    pub fn connect(net: Arc<dyn Host>, registry: EndpointId) -> RegistryClient {
        let (endpoint, mailbox) = net.open();
        RegistryClient {
            net: net as Arc<dyn Network>,
            endpoint,
            mailbox,
            registry,
            next_call: 0,
            clock: Arc::new(SystemClock::new()),
            timeout: Duration::from_secs(2),
        }
    }

    /// Replaces the clock used to stamp request deadlines.
    #[must_use]
    pub fn with_clock(mut self, clock: SharedClock) -> RegistryClient {
        self.clock = clock;
        self
    }

    fn call<A: serde::Serialize, R: serde::de::DeserializeOwned>(
        &mut self,
        method: &str,
        args: &A,
    ) -> Result<R, RmiError> {
        let call = self.next_call;
        self.next_call += 1;
        let args = erm_transport::to_bytes(args).map_err(|e| RmiError::Encode(e.to_string()))?;
        // One wire attempt per call (this client never retransmits), so the
        // 1-based attempt counter is literally 1 — the same convention the
        // stub's resend paths continue from. Registry operations are
        // idempotent lookups/bindings, so `AtLeastOnce` is honest.
        let context = InvocationContext {
            id: call,
            deadline: self.clock.now() + SimDuration::from_micros(self.timeout.as_micros() as u64),
            attempt: 1,
            origin: self.endpoint,
            semantics: Semantics::AtLeastOnce,
        };
        self.net
            .send(
                self.endpoint,
                self.registry,
                RmiMessage::Request {
                    call,
                    context,
                    method: method.to_string(),
                    args,
                }
                .encode(),
            )
            .map_err(|_| RmiError::SentinelUnreachable(self.registry))?;
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(RmiError::SentinelUnreachable(self.registry));
            }
            match self.mailbox.recv_timeout(remaining) {
                Ok(d) => {
                    if let Ok(RmiMessage::Response {
                        call: c, outcome, ..
                    }) = RmiMessage::decode(&d.payload)
                    {
                        if c != call {
                            continue;
                        }
                        let bytes = outcome.map_err(RmiError::Remote)?;
                        return erm_transport::from_bytes(&bytes)
                            .map_err(|e| RmiError::Decode(e.to_string()));
                    }
                }
                Err(_) => return Err(RmiError::SentinelUnreachable(self.registry)),
            }
        }
    }

    /// Binds `name` to a pool's sentinel endpoint. Returns `true` when the
    /// name was previously unbound (rebinding is allowed and returns
    /// `false`).
    ///
    /// # Errors
    ///
    /// Transport or registry failures as [`RmiError`].
    pub fn bind(&mut self, name: &str, sentinel: EndpointId) -> Result<bool, RmiError> {
        self.call("bind", &(name, sentinel))
    }

    /// Removes a binding; returns whether it existed.
    ///
    /// # Errors
    ///
    /// Transport or registry failures as [`RmiError`].
    pub fn unbind(&mut self, name: &str) -> Result<bool, RmiError> {
        self.call("unbind", &name)
    }

    /// Looks a name up.
    ///
    /// # Errors
    ///
    /// Transport or registry failures as [`RmiError`].
    pub fn lookup(&mut self, name: &str) -> Result<Option<EndpointId>, RmiError> {
        self.call("lookup", &name)
    }

    /// Lists all bound names, sorted.
    ///
    /// # Errors
    ///
    /// Transport or registry failures as [`RmiError`].
    pub fn list(&mut self) -> Result<Vec<String>, RmiError> {
        self.call("list", &())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_transport::InProcNetwork;

    fn setup() -> (InProcNetwork, RegistryServer, RegistryClient) {
        let net = InProcNetwork::new();
        let server = RegistryServer::spawn(Arc::new(net.clone()));
        let client = RegistryClient::connect(Arc::new(net.clone()), server.endpoint());
        (net, server, client)
    }

    #[test]
    fn bind_lookup_roundtrip() {
        let (_net, server, mut client) = setup();
        assert!(client.bind("orders", EndpointId(7)).unwrap());
        assert_eq!(client.lookup("orders").unwrap(), Some(EndpointId(7)));
        assert_eq!(client.lookup("absent").unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn rebind_replaces_and_reports() {
        let (_net, server, mut client) = setup();
        assert!(client.bind("svc", EndpointId(1)).unwrap());
        assert!(!client.bind("svc", EndpointId(2)).unwrap());
        assert_eq!(client.lookup("svc").unwrap(), Some(EndpointId(2)));
        server.shutdown();
    }

    #[test]
    fn unbind_removes() {
        let (_net, server, mut client) = setup();
        client.bind("a", EndpointId(1)).unwrap();
        assert!(client.unbind("a").unwrap());
        assert!(!client.unbind("a").unwrap());
        assert_eq!(client.lookup("a").unwrap(), None);
        server.shutdown();
    }

    #[test]
    fn list_is_sorted() {
        let (_net, server, mut client) = setup();
        for name in ["zeta", "alpha", "mid"] {
            client.bind(name, EndpointId(0)).unwrap();
        }
        assert_eq!(client.list().unwrap(), vec!["alpha", "mid", "zeta"]);
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_the_namespace() {
        let (net, server, mut a) = setup();
        let mut b = RegistryClient::connect(Arc::new(net.clone()), server.endpoint());
        a.bind("shared", EndpointId(9)).unwrap();
        assert_eq!(b.lookup("shared").unwrap(), Some(EndpointId(9)));
        server.shutdown();
    }

    #[test]
    fn dead_registry_reports_unreachable() {
        let (_net, server, mut client) = setup();
        server.shutdown();
        let err = client.lookup("x").unwrap_err();
        assert!(matches!(err, RmiError::SentinelUnreachable(_)));
    }

    #[test]
    fn unknown_method_is_remote_error() {
        let (_net, server, mut client) = setup();
        let err = client.call::<_, bool>("frob", &()).unwrap_err();
        assert!(matches!(err, RmiError::Remote(e) if e.kind == "NoSuchMethod"));
        server.shutdown();
    }
}
