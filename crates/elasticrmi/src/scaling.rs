//! The scaling decision engine (paper §2.5, §3).
//!
//! Deliberately pure: the engine consumes a [`PoolSample`] and emits a
//! [`ScalingDecision`], with no I/O of its own. The threaded pool runtime
//! and the discrete-event experiment harness both drive *this same code*,
//! which is what makes the reproduced agility figures evidence about the
//! middleware rather than about a reimplementation of it.

use erm_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::config::{PoolConfig, ScalingPolicy, Thresholds};

/// One burst interval's aggregated view of the pool, assembled by whoever
/// runs the engine (the runtime polls every member and averages, §3.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PoolSample {
    /// Current number of pool members.
    pub pool_size: u32,
    /// Average CPU utilization across members, percent (the paper's
    /// `getAvgCPUUsage()`).
    pub avg_cpu: f32,
    /// Average RAM utilization across members, percent.
    pub avg_ram: f32,
    /// Each member's `changePoolSize()` vote (fine-grained policy only).
    pub fine_votes: Vec<i32>,
    /// Desired absolute size from an application-level `Decider`.
    pub desired_size: Option<u32>,
    /// Worst per-member 99th-percentile admission-queue delay over the
    /// interval. Zero when admission control is off or the pool is idle.
    pub queue_delay_p99: SimDuration,
    /// `Overloaded` rejections across all members during the interval.
    pub rejected: u32,
}

/// What the pool should do this burst interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingDecision {
    /// Add this many objects (already clamped to `max_pool_size`).
    Grow(u32),
    /// Remove this many objects (already clamped to `min_pool_size`).
    Shrink(u32),
    /// Leave the pool as is.
    Hold,
}

impl ScalingDecision {
    /// The signed size delta this decision represents.
    pub fn delta(self) -> i64 {
        match self {
            ScalingDecision::Grow(n) => i64::from(n),
            ScalingDecision::Shrink(n) => -i64::from(n),
            ScalingDecision::Hold => 0,
        }
    }
}

/// Why a decision came out the way it did: the rule that fired plus the
/// observation and threshold it compared, in milli-units (percent × 1000,
/// milliseconds, or milli-votes) so the explanation stays `Eq`-comparable
/// and fits the `RuleFired` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DecisionExplanation {
    /// Stable identifier of the rule that determined the decision, e.g.
    /// `"cpu-above-increase-threshold"` or `"queue-delay-above-bound"`.
    pub rule: &'static str,
    /// The observed value the rule compared, in milli-units.
    pub observed_milli: i64,
    /// The configured threshold it was compared against, in milli-units.
    pub threshold_milli: i64,
}

fn pct_milli(pct: f32) -> i64 {
    (f64::from(pct) * 1000.0).round() as i64
}

fn dur_milli(d: SimDuration) -> i64 {
    (d.as_micros() / 1000) as i64
}

/// The per-pool scaling engine: burst-interval pacing plus the four decision
/// mechanisms.
#[derive(Debug, Clone)]
pub struct ScalingEngine {
    config: PoolConfig,
    next_due: SimTime,
}

impl ScalingEngine {
    /// Creates an engine; the first decision is due one burst interval after
    /// `start`.
    pub fn new(config: PoolConfig, start: SimTime) -> Self {
        let next_due = start + config.burst_interval();
        ScalingEngine { config, next_due }
    }

    /// The configuration the engine enforces.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Whether a burst interval has elapsed and a decision is due.
    pub fn is_due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// When the next decision will be due.
    pub fn next_due(&self) -> SimTime {
        self.next_due
    }

    /// Makes a decision if one is due, otherwise returns `Hold` without
    /// consuming the interval. This is the method the runtime calls every
    /// tick.
    pub fn poll(&mut self, now: SimTime, sample: &PoolSample) -> ScalingDecision {
        self.poll_explained(now, sample).0
    }

    /// Like [`ScalingEngine::poll`], but also reports *why*: the rule whose
    /// comparison determined a non-`Hold` decision. `None` when nothing was
    /// due, nothing fired, or clamping cancelled the step.
    pub fn poll_explained(
        &mut self,
        now: SimTime,
        sample: &PoolSample,
    ) -> (ScalingDecision, Option<DecisionExplanation>) {
        if !self.is_due(now) {
            return (ScalingDecision::Hold, None);
        }
        self.next_due = now + self.config.burst_interval();
        self.decide_explained(sample)
    }

    /// The pure decision function, ignoring pacing. Exposed for tests and
    /// for harnesses that do their own scheduling.
    pub fn decide(&self, sample: &PoolSample) -> ScalingDecision {
        self.decide_explained(sample).0
    }

    /// [`ScalingEngine::decide`] plus the explanation of which rule fired.
    pub fn decide_explained(
        &self,
        sample: &PoolSample,
    ) -> (ScalingDecision, Option<DecisionExplanation>) {
        let (raw_delta, mut why): (i64, Option<DecisionExplanation>) = match self.config.policy() {
            ScalingPolicy::Implicit => threshold_step(
                sample,
                &Thresholds {
                    cpu_incr: Some(ScalingPolicy::IMPLICIT_CPU_INCR),
                    cpu_decr: Some(ScalingPolicy::IMPLICIT_CPU_DECR),
                    ram_incr: None,
                    ram_decr: None,
                },
            ),
            ScalingPolicy::Coarse(t) => threshold_step(sample, &t),
            ScalingPolicy::FineGrained => {
                let votes = &sample.fine_votes;
                let delta = average_vote(votes);
                let why = (delta != 0).then(|| DecisionExplanation {
                    rule: "fine-vote-average",
                    observed_milli: if votes.is_empty() {
                        0
                    } else {
                        votes.iter().map(|&v| i64::from(v)).sum::<i64>() * 1000 / votes.len() as i64
                    },
                    threshold_milli: 0,
                });
                (delta, why)
            }
            ScalingPolicy::AppLevel => match sample.desired_size {
                Some(desired) => {
                    let delta = i64::from(desired) - i64::from(sample.pool_size);
                    let why = (delta != 0).then(|| DecisionExplanation {
                        rule: "app-level-desired",
                        observed_milli: i64::from(sample.pool_size) * 1000,
                        threshold_milli: i64::from(desired) * 1000,
                    });
                    (delta, why)
                }
                None => (0, None),
            },
        };
        // Queueing delay overrides everything except an explicit shrink-free
        // growth: a member whose admitted work waits longer than the
        // configured bound means the pool is under-provisioned *now*, even
        // if averaged CPU looks calm (the paper's `changePoolSize` spirit:
        // scale on the metric the application actually feels).
        let raw_delta = match self.config.queue_delay_grow_above() {
            Some(bound) if sample.queue_delay_p99 > bound => {
                if raw_delta < 1 {
                    why = Some(DecisionExplanation {
                        rule: "queue-delay-above-bound",
                        observed_milli: dur_milli(sample.queue_delay_p99),
                        threshold_milli: dur_milli(bound),
                    });
                }
                raw_delta.max(1)
            }
            _ => raw_delta,
        };
        let target = self
            .config
            .clamp_size(i64::from(sample.pool_size) + raw_delta);
        let decision = match i64::from(target) - i64::from(sample.pool_size) {
            0 => ScalingDecision::Hold,
            d if d > 0 => ScalingDecision::Grow(d as u32),
            d => ScalingDecision::Shrink((-d) as u32),
        };
        // A rule may have fired and still produced no change (clamped at a
        // bound): report no explanation, since there is no step to explain.
        if decision == ScalingDecision::Hold {
            why = None;
        }
        (decision, why)
    }
}

/// Coarse-grained step: +1 when any configured increase threshold is
/// exceeded (logical OR, §3.3), −1 when every configured decrease threshold
/// is satisfied; growth wins conflicts.
fn threshold_step(sample: &PoolSample, t: &Thresholds) -> (i64, Option<DecisionExplanation>) {
    let cpu_hot = t.cpu_incr.is_some_and(|th| sample.avg_cpu > th);
    let ram_hot = t.ram_incr.is_some_and(|th| sample.avg_ram > th);
    if cpu_hot {
        let why = DecisionExplanation {
            rule: "cpu-above-increase-threshold",
            observed_milli: pct_milli(sample.avg_cpu),
            threshold_milli: pct_milli(t.cpu_incr.unwrap_or(0.0)),
        };
        return (1, Some(why));
    }
    if ram_hot {
        let why = DecisionExplanation {
            rule: "ram-above-increase-threshold",
            observed_milli: pct_milli(sample.avg_ram),
            threshold_milli: pct_milli(t.ram_incr.unwrap_or(0.0)),
        };
        return (1, Some(why));
    }
    let decr_configured = t.cpu_decr.is_some() || t.ram_decr.is_some();
    let cpu_cold = t.cpu_decr.is_none_or(|th| sample.avg_cpu < th);
    let ram_cold = t.ram_decr.is_none_or(|th| sample.avg_ram < th);
    if decr_configured && cpu_cold && ram_cold {
        // Report the CPU comparison when configured (the commoner policy),
        // else the RAM one — both held, only one fits the explanation.
        let why = match t.cpu_decr {
            Some(th) => DecisionExplanation {
                rule: "cpu-ram-below-decrease-thresholds",
                observed_milli: pct_milli(sample.avg_cpu),
                threshold_milli: pct_milli(th),
            },
            None => DecisionExplanation {
                rule: "cpu-ram-below-decrease-thresholds",
                observed_milli: pct_milli(sample.avg_ram),
                threshold_milli: pct_milli(t.ram_decr.unwrap_or(0.0)),
            },
        };
        return (-1, Some(why));
    }
    (0, None)
}

/// Fine-grained aggregation: "the values returned by the various objects in
/// the pool are averaged to determine the number of objects that have to be
/// added/removed" (§3.3). Rounds half away from zero.
fn average_vote(votes: &[i32]) -> i64 {
    if votes.is_empty() {
        return 0;
    }
    let sum: i64 = votes.iter().map(|&v| i64::from(v)).sum();
    let avg = sum as f64 / votes.len() as f64;
    avg.abs().round() as i64 * avg.signum() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_sim::SimDuration;

    fn engine(policy: ScalingPolicy, min: u32, max: u32) -> ScalingEngine {
        let config = PoolConfig::builder("C1")
            .min_pool_size(min)
            .max_pool_size(max)
            .policy(policy)
            .build()
            .unwrap();
        ScalingEngine::new(config, SimTime::ZERO)
    }

    fn sample(pool_size: u32, cpu: f32, ram: f32) -> PoolSample {
        PoolSample {
            pool_size,
            avg_cpu: cpu,
            avg_ram: ram,
            ..PoolSample::default()
        }
    }

    #[test]
    fn implicit_grows_above_ninety() {
        let e = engine(ScalingPolicy::Implicit, 2, 10);
        assert_eq!(e.decide(&sample(5, 95.0, 0.0)), ScalingDecision::Grow(1));
        assert_eq!(e.decide(&sample(5, 90.0, 0.0)), ScalingDecision::Hold);
    }

    #[test]
    fn implicit_shrinks_below_sixty() {
        let e = engine(ScalingPolicy::Implicit, 2, 10);
        assert_eq!(e.decide(&sample(5, 40.0, 0.0)), ScalingDecision::Shrink(1));
        assert_eq!(e.decide(&sample(5, 75.0, 0.0)), ScalingDecision::Hold);
    }

    #[test]
    fn implicit_respects_bounds() {
        let e = engine(ScalingPolicy::Implicit, 2, 10);
        assert_eq!(e.decide(&sample(10, 99.0, 0.0)), ScalingDecision::Hold);
        assert_eq!(e.decide(&sample(2, 10.0, 0.0)), ScalingDecision::Hold);
    }

    #[test]
    fn coarse_or_semantics_for_growth() {
        // Fig. 4b: cpu 85 / ram 70 increase thresholds, OR-combined.
        let t = Thresholds {
            cpu_incr: Some(85.0),
            cpu_decr: Some(50.0),
            ram_incr: Some(70.0),
            ram_decr: Some(40.0),
        };
        let e = engine(ScalingPolicy::Coarse(t), 2, 50);
        // RAM alone above its threshold triggers growth.
        assert_eq!(e.decide(&sample(5, 30.0, 75.0)), ScalingDecision::Grow(1));
        // CPU alone too.
        assert_eq!(e.decide(&sample(5, 90.0, 10.0)), ScalingDecision::Grow(1));
    }

    #[test]
    fn coarse_shrink_requires_all_cold() {
        let t = Thresholds {
            cpu_incr: Some(85.0),
            cpu_decr: Some(50.0),
            ram_incr: Some(70.0),
            ram_decr: Some(40.0),
        };
        let e = engine(ScalingPolicy::Coarse(t), 2, 50);
        assert_eq!(e.decide(&sample(5, 30.0, 30.0)), ScalingDecision::Shrink(1));
        // RAM still warm: no shrink.
        assert_eq!(e.decide(&sample(5, 30.0, 60.0)), ScalingDecision::Hold);
    }

    #[test]
    fn fine_grained_averages_votes() {
        let e = engine(ScalingPolicy::FineGrained, 2, 50);
        let mut s = sample(5, 0.0, 0.0);
        // Votes 2, 2, 2 -> +2 (the CacheExplicit2 "return 2" case).
        s.fine_votes = vec![2, 2, 2];
        assert_eq!(e.decide(&s), ScalingDecision::Grow(2));
        // Votes 1, 0, -1 -> average 0 -> hold.
        s.fine_votes = vec![1, 0, -1];
        assert_eq!(e.decide(&s), ScalingDecision::Hold);
        // Votes -2, -4 -> -3.
        s.fine_votes = vec![-2, -4];
        assert_eq!(e.decide(&s), ScalingDecision::Shrink(3));
    }

    #[test]
    fn fine_grained_ignores_cpu() {
        // §3.3: "if changePoolSize is overridden, then scaling based on
        // CPU/Memory utilization is disabled."
        let e = engine(ScalingPolicy::FineGrained, 2, 50);
        let mut s = sample(5, 99.0, 99.0);
        s.fine_votes = vec![0, 0];
        assert_eq!(e.decide(&s), ScalingDecision::Hold);
    }

    #[test]
    fn fine_grained_with_no_votes_holds() {
        let e = engine(ScalingPolicy::FineGrained, 2, 50);
        assert_eq!(e.decide(&sample(5, 0.0, 0.0)), ScalingDecision::Hold);
    }

    #[test]
    fn app_level_tracks_desired_size() {
        let e = engine(ScalingPolicy::AppLevel, 2, 50);
        let mut s = sample(5, 0.0, 0.0);
        s.desired_size = Some(12);
        assert_eq!(e.decide(&s), ScalingDecision::Grow(7));
        s.desired_size = Some(3);
        assert_eq!(e.decide(&s), ScalingDecision::Shrink(2));
        s.desired_size = None;
        assert_eq!(e.decide(&s), ScalingDecision::Hold);
    }

    #[test]
    fn fine_votes_are_clamped_to_bounds() {
        let e = engine(ScalingPolicy::FineGrained, 2, 8);
        let mut s = sample(7, 0.0, 0.0);
        s.fine_votes = vec![10, 10];
        assert_eq!(e.decide(&s), ScalingDecision::Grow(1), "clamped at max 8");
        s.pool_size = 3;
        s.fine_votes = vec![-10];
        assert_eq!(e.decide(&s), ScalingDecision::Shrink(1), "clamped at min 2");
    }

    #[test]
    fn poll_respects_burst_interval() {
        let config = PoolConfig::builder("C1")
            .burst_interval(SimDuration::from_secs(60))
            .build()
            .unwrap();
        let mut e = ScalingEngine::new(config, SimTime::ZERO);
        let hot = sample(5, 99.0, 0.0);
        // Not due before one interval has elapsed.
        assert_eq!(e.poll(SimTime::from_secs(30), &hot), ScalingDecision::Hold);
        assert_eq!(
            e.poll(SimTime::from_secs(60), &hot),
            ScalingDecision::Grow(1)
        );
        // Interval consumed: immediately asking again holds.
        assert_eq!(e.poll(SimTime::from_secs(61), &hot), ScalingDecision::Hold);
        assert_eq!(
            e.poll(SimTime::from_secs(120), &hot),
            ScalingDecision::Grow(1)
        );
    }

    #[test]
    fn queue_delay_forces_growth_when_configured() {
        let config = PoolConfig::builder("C1")
            .min_pool_size(2)
            .max_pool_size(10)
            .policy(ScalingPolicy::Implicit)
            .queue_delay_grow_above(SimDuration::from_millis(50))
            .build()
            .unwrap();
        let e = ScalingEngine::new(config, SimTime::ZERO);
        // CPU is calm, but queued work waits 100 ms at p99: grow anyway.
        let mut s = sample(5, 70.0, 0.0);
        s.queue_delay_p99 = SimDuration::from_millis(100);
        assert_eq!(e.decide(&s), ScalingDecision::Grow(1));
        // Below the bound the CPU-only policy rules (70% -> hold).
        s.queue_delay_p99 = SimDuration::from_millis(10);
        assert_eq!(e.decide(&s), ScalingDecision::Hold);
        // The override never vetoes a larger growth already decided.
        let mut hot = sample(5, 99.0, 0.0);
        hot.queue_delay_p99 = SimDuration::from_millis(100);
        assert_eq!(e.decide(&hot), ScalingDecision::Grow(1));
        // Still clamped by max_pool_size.
        let mut full = sample(10, 10.0, 0.0);
        full.queue_delay_p99 = SimDuration::from_millis(100);
        assert_eq!(e.decide(&full), ScalingDecision::Hold);
    }

    #[test]
    fn queue_delay_ignored_when_unconfigured() {
        let e = engine(ScalingPolicy::Implicit, 2, 10);
        let mut s = sample(5, 70.0, 0.0);
        s.queue_delay_p99 = SimDuration::from_secs(5);
        assert_eq!(e.decide(&s), ScalingDecision::Hold);
    }

    #[test]
    fn explained_reports_the_firing_rule() {
        let e = engine(ScalingPolicy::Implicit, 2, 10);
        let (d, why) = e.decide_explained(&sample(5, 95.0, 0.0));
        assert_eq!(d, ScalingDecision::Grow(1));
        let why = why.expect("growth has an explanation");
        assert_eq!(why.rule, "cpu-above-increase-threshold");
        assert_eq!(why.observed_milli, 95_000);
        assert_eq!(why.threshold_milli, 90_000);

        let (d, why) = e.decide_explained(&sample(5, 40.0, 0.0));
        assert_eq!(d, ScalingDecision::Shrink(1));
        assert_eq!(why.unwrap().rule, "cpu-ram-below-decrease-thresholds");

        // Hold carries no explanation.
        assert_eq!(e.decide_explained(&sample(5, 75.0, 0.0)).1, None);
        // Clamped at max: rule fired but nothing changed, so no explanation.
        assert_eq!(e.decide_explained(&sample(10, 99.0, 0.0)).1, None);
    }

    #[test]
    fn explained_queue_delay_override_names_its_rule() {
        let config = PoolConfig::builder("C1")
            .min_pool_size(2)
            .max_pool_size(10)
            .policy(ScalingPolicy::Implicit)
            .queue_delay_grow_above(SimDuration::from_millis(50))
            .build()
            .unwrap();
        let e = ScalingEngine::new(config, SimTime::ZERO);
        let mut s = sample(5, 70.0, 0.0);
        s.queue_delay_p99 = SimDuration::from_millis(100);
        let (d, why) = e.decide_explained(&s);
        assert_eq!(d, ScalingDecision::Grow(1));
        let why = why.unwrap();
        assert_eq!(why.rule, "queue-delay-above-bound");
        assert_eq!(why.observed_milli, 100);
        assert_eq!(why.threshold_milli, 50);
        // When CPU already decided to grow, the CPU rule keeps the credit.
        let mut hot = sample(5, 99.0, 0.0);
        hot.queue_delay_p99 = SimDuration::from_millis(100);
        let (_, why) = e.decide_explained(&hot);
        assert_eq!(why.unwrap().rule, "cpu-above-increase-threshold");
    }

    #[test]
    fn explained_fine_votes_and_app_level() {
        let e = engine(ScalingPolicy::FineGrained, 2, 50);
        let mut s = sample(5, 0.0, 0.0);
        s.fine_votes = vec![2, 2, 2];
        let (d, why) = e.decide_explained(&s);
        assert_eq!(d, ScalingDecision::Grow(2));
        let why = why.unwrap();
        assert_eq!(why.rule, "fine-vote-average");
        assert_eq!(why.observed_milli, 2_000);

        let e = engine(ScalingPolicy::AppLevel, 2, 50);
        let mut s = sample(5, 0.0, 0.0);
        s.desired_size = Some(12);
        let (d, why) = e.decide_explained(&s);
        assert_eq!(d, ScalingDecision::Grow(7));
        let why = why.unwrap();
        assert_eq!(why.rule, "app-level-desired");
        assert_eq!(why.threshold_milli, 12_000);
    }

    #[test]
    fn decision_delta_signs() {
        assert_eq!(ScalingDecision::Grow(3).delta(), 3);
        assert_eq!(ScalingDecision::Shrink(2).delta(), -2);
        assert_eq!(ScalingDecision::Hold.delta(), 0);
    }
}
