//! The elastic object pool runtime (paper §2.4–§2.5, §4).
//!
//! `ElasticPool::instantiate` plays the role of constructing an elastic
//! class in ElasticRMI: it asks the cluster manager for `min_pool_size`
//! slices (accepting `l < k` under scarcity), starts one skeleton-hosted
//! service instance per granted slice, elects the lowest-uid member
//! sentinel, and then runs the control loop that the paper's runtime system
//! performs:
//!
//! * polls every member for load each burst interval,
//! * feeds the aggregated [`PoolSample`] to the [`ScalingEngine`],
//! * grows by requesting new slices (members join as provisioning
//!   completes) and shrinks via the two-phase drain handshake,
//! * broadcasts membership (epoch, sentinel, loads) to all skeletons,
//! * plans server-side rebalancing with first-fit bin packing, and
//! * detects member crashes, re-electing the sentinel by lowest uid.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use erm_cluster::{ClusterHandle, SliceGrant, SliceId};
use erm_kvstore::{LockOwner, Store};
use erm_metrics::{Histogram, MetricsHandle, TraceEvent, TraceHandle};
use erm_sim::{SharedClock, SimDuration, SimTime};
use erm_transport::{EndpointId, Host, Mailbox, Network};
use parking_lot::{Mutex, RwLock};

use crate::api::{ElasticService, ServiceContext};
use crate::balance::{plan_redirects, MemberLoad};
use crate::config::{PoolConfig, ScalingPolicy};
use crate::error::PoolError;
use crate::message::{LoadReport, MemberState, RmiMessage};
use crate::scaling::{PoolSample, ScalingDecision, ScalingEngine};
use crate::stub::{ClientLb, Stub};

/// Creates one service instance per pool member.
pub type ServiceFactory = Arc<dyn Fn() -> Box<dyn ElasticService> + Send + Sync>;

/// Application-level scaling decisions (the paper's `Decider`, §3.3): an
/// external component with a global view dictates each pool's desired size.
pub trait Decider: Send + 'static {
    /// Returns the desired pool size given the latest aggregated sample.
    fn desired_pool_size(&mut self, sample: &PoolSample) -> u32;
}

impl<F: FnMut(&PoolSample) -> u32 + Send + 'static> Decider for F {
    fn desired_pool_size(&mut self, sample: &PoolSample) -> u32 {
        self(sample)
    }
}

/// External dependencies of a pool: the cluster, the network host, the
/// shared store, the clock, and the (optional) trace sink.
#[derive(Clone)]
pub struct PoolDeps {
    /// The Mesos-like resource manager granting slices.
    pub cluster: ClusterHandle,
    /// The network to host skeleton endpoints on.
    pub net: Arc<dyn Host>,
    /// The HyperDex-like store for shared state.
    pub store: Arc<Store>,
    /// Time source (system clock in production, virtual in tests).
    pub clock: SharedClock,
    /// Trace sink for invocation and elasticity events (disabled by
    /// default; see [`erm_metrics::TraceSink`]).
    pub trace: TraceHandle,
    /// Metrics registry the pool's skeletons register their instruments on
    /// (`skeleton.queue.delay`, `skeleton.service.time`). Disabled by
    /// default; see [`erm_metrics::Registry`].
    pub metrics: MetricsHandle,
}

impl std::fmt::Debug for PoolDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolDeps").finish_non_exhaustive()
    }
}

/// Lifetime counters for one pool.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Members added after initial instantiation.
    pub grown: u32,
    /// Members removed by scale-in.
    pub shrunk: u32,
    /// Members lost to crashes.
    pub crashed: u32,
    /// Sentinel re-elections.
    pub elections: u32,
    /// Current membership epoch.
    pub epoch: u64,
    /// Provisioning latencies (request → member serving) observed.
    pub provisioning_latencies: Vec<SimDuration>,
    /// `Overloaded` rejections reported by members across all burst
    /// intervals.
    pub rejected: u64,
}

#[derive(Debug)]
struct PoolShared {
    sentinel: RwLock<EndpointId>,
    members: RwLock<Vec<EndpointId>>,
    size: Arc<AtomicU32>,
    stats: Mutex<PoolStats>,
    last_reports: Mutex<Vec<LoadReport>>,
}

enum Command {
    Shutdown,
}

/// Handle to a running elastic object pool.
///
/// Dropping the handle shuts the pool down (draining members and releasing
/// their slices).
pub struct ElasticPool {
    shared: Arc<PoolShared>,
    net: Arc<dyn Host>,
    clock: SharedClock,
    trace: TraceHandle,
    semantics: crate::SemanticsTable,
    cmd_tx: Sender<Command>,
    runtime: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ElasticPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticPool")
            .field("size", &self.size())
            .field("sentinel", &self.sentinel())
            .finish()
    }
}

impl ElasticPool {
    /// Instantiates the pool: requests `min_pool_size` slices, starts one
    /// member per granted slice (fewer than requested is accepted, §4.2),
    /// and launches the control loop.
    ///
    /// `decider` supplies application-level decisions and is required
    /// exactly when the policy is [`ScalingPolicy::AppLevel`].
    ///
    /// # Errors
    ///
    /// [`PoolError::NoCapacity`] when the cluster grants no slices at all;
    /// [`PoolError::Cluster`] when the cluster master is down.
    ///
    /// # Panics
    ///
    /// Panics if `decider` presence does not match the policy.
    pub fn instantiate(
        config: PoolConfig,
        factory: ServiceFactory,
        deps: PoolDeps,
        decider: Option<Box<dyn Decider>>,
    ) -> Result<ElasticPool, PoolError> {
        assert_eq!(
            matches!(config.policy(), ScalingPolicy::AppLevel),
            decider.is_some(),
            "a Decider must be supplied iff the policy is AppLevel"
        );
        let now = deps.clock.now();
        let outcome = deps
            .cluster
            .request_slices(config.min_pool_size(), now)
            .map_err(|e| PoolError::Cluster(e.to_string()))?;
        if outcome.granted == 0 {
            return Err(PoolError::NoCapacity);
        }

        let shared = Arc::new(PoolShared {
            sentinel: RwLock::new(EndpointId(u64::MAX)),
            members: RwLock::new(Vec::new()),
            size: Arc::new(AtomicU32::new(0)),
            stats: Mutex::new(PoolStats::default()),
            last_reports: Mutex::new(Vec::new()),
        });
        let (cmd_tx, cmd_rx) = unbounded();
        let (ctl, ctl_mailbox) = deps.net.open();
        let semantics = config.semantics().clone();
        let mut runtime = Runtime {
            config,
            deps: deps.clone(),
            factory,
            decider,
            shared: Arc::clone(&shared),
            ctl,
            cmd_rx,
            members: BTreeMap::new(),
            next_uid: 0,
            epoch: 0,
            reports: BTreeMap::new(),
            engine: None,
            collect_until: None,
            grant_times: BTreeMap::new(),
            last_broadcast: SimTime::ZERO,
            revoked_slices: BTreeSet::new(),
            recovery: RecoveryTracker::new(&deps.metrics),
        };
        runtime.grant_times.insert(outcome.request_id, now);
        let handle = std::thread::Builder::new()
            .name("elasticrmi-pool".to_string())
            .spawn(move || runtime.run(ctl_mailbox))
            .expect("spawn pool runtime");

        let pool = ElasticPool {
            shared,
            net: deps.net,
            clock: deps.clock,
            trace: deps.trace,
            semantics,
            cmd_tx,
            runtime: Some(handle),
        };
        // Wait for the initial members to come up, bounded on the injected
        // clock: 30 s of *sim* time. Under the system clock that is 30 real
        // seconds; under a virtual clock, provisioning failure surfaces
        // only when the driving harness advances time past the bound —
        // never because wall time leaked into protocol logic.
        let deadline = pool.clock.now() + SimDuration::from_secs(30);
        while pool.size() == 0 {
            if pool.clock.now() > deadline {
                return Err(PoolError::Cluster(
                    "initial members failed to provision in time".to_string(),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(pool)
    }

    /// Current number of live members — the paper's `getPoolSize()`.
    pub fn size(&self) -> u32 {
        self.shared.size.load(Ordering::SeqCst)
    }

    /// The sentinel's invocation endpoint: what a client needs to connect.
    pub fn sentinel(&self) -> EndpointId {
        *self.shared.sentinel.read()
    }

    /// Current member endpoints.
    pub fn members(&self) -> Vec<EndpointId> {
        self.shared.members.read().clone()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.shared.stats.lock().clone()
    }

    /// The load reports collected at the most recent burst interval — what
    /// the sentinel saw when it last made a scaling decision (per-member
    /// pending counts, busy/RAM utilization, fine votes, method stats).
    pub fn last_reports(&self) -> Vec<LoadReport> {
        self.shared.last_reports.lock().clone()
    }

    /// Opens a client stub against this pool.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::RmiError::SentinelUnreachable`] if discovery
    /// fails.
    pub fn stub(&self, lb: ClientLb) -> Result<Stub, crate::RmiError> {
        let (ep, mailbox) = self.net.open();
        let net: Arc<dyn Network> = Arc::clone(&self.net) as Arc<dyn Network>;
        let mut stub = Stub::connect(
            net,
            ep,
            mailbox,
            self.sentinel(),
            lb,
            Arc::clone(&self.clock),
        )?;
        stub.set_trace(self.trace.clone());
        // Stubs stamp each request's `context.semantics` from the pool's
        // declared per-method table (wire v4), so at-most-once methods are
        // protected end-to-end without per-caller wiring.
        stub.set_semantics(self.semantics.clone());
        Ok(stub)
    }

    /// Shuts the pool down: drains every member and releases all slices.
    /// Idempotent; also performed on drop.
    pub fn shutdown(&mut self) {
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(handle) = self.runtime.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ElasticPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Member {
    endpoint: EndpointId,
    slice: SliceId,
    join: JoinHandle<()>,
    draining: bool,
    requested_at: Option<SimTime>,
    first_served: bool,
    /// When this member's endpoint was taken down by a slice revocation
    /// (node failure). A draining member with `crashed_at` set is reaped as
    /// crashed rather than waiting for a drain ack that can never arrive.
    crashed_at: Option<SimTime>,
}

/// Tracks open crash-recovery windows and records their lags (§4.4: a
/// failure should "affect the cluster only during the outage window" — these
/// histograms measure that window).
struct RecoveryTracker {
    /// `pool.recovery.reelection.lag`: sentinel crash → new sentinel elected.
    reelection_lag: Histogram,
    /// `pool.recovery.capacity.lag`: crash → live size back at the pre-crash
    /// target (clamped to `min_pool_size`, the level the scaling engine is
    /// obliged to restore).
    capacity_lag: Histogram,
    /// Earliest unrecovered crash and the live size that closes the window.
    pending_capacity: Option<(SimTime, u32)>,
}

impl RecoveryTracker {
    fn new(metrics: &MetricsHandle) -> Self {
        RecoveryTracker {
            reelection_lag: metrics.histogram("pool.recovery.reelection.lag"),
            capacity_lag: metrics.histogram("pool.recovery.capacity.lag"),
            pending_capacity: None,
        }
    }

    fn on_crash(&mut self, crashed_at: SimTime, target_live: u32) {
        match &mut self.pending_capacity {
            Some((_, target)) => *target = (*target).max(target_live),
            None => self.pending_capacity = Some((crashed_at, target_live)),
        }
    }

    fn check_capacity(&mut self, live: u32, now: SimTime) {
        if let Some((crashed_at, target)) = self.pending_capacity {
            if live >= target {
                self.capacity_lag.record(now.saturating_since(crashed_at));
                self.pending_capacity = None;
            }
        }
    }
}

struct Runtime {
    config: PoolConfig,
    deps: PoolDeps,
    factory: ServiceFactory,
    decider: Option<Box<dyn Decider>>,
    shared: Arc<PoolShared>,
    ctl: EndpointId,
    cmd_rx: Receiver<Command>,
    members: BTreeMap<u64, Member>,
    next_uid: u64,
    epoch: u64,
    reports: BTreeMap<u64, LoadReport>,
    engine: Option<ScalingEngine>,
    /// Sim-time deadline for the current load-report collection round;
    /// `None` when no poll is outstanding.
    collect_until: Option<SimTime>,
    grant_times: BTreeMap<u64, SimTime>,
    last_broadcast: SimTime,
    /// Slices the cluster revoked (node failure) that we have not finalized
    /// yet. `finalize_member` must not `release()` these: the cluster
    /// already took them back, and by finalize time the slice may have been
    /// re-granted — releasing it again would free it underneath its new
    /// owner.
    revoked_slices: BTreeSet<SliceId>,
    recovery: RecoveryTracker,
}

/// Control-loop pacing. Pure thread scheduling (how often the loop wakes to
/// look at its mailboxes), not protocol semantics — so it stays wall time.
const TICK: Duration = Duration::from_millis(2);
/// How long (sim time) the sentinel waits for load reports after a poll.
const COLLECT_GRACE: SimDuration = SimDuration::from_millis(100);
const BROADCAST_EVERY: SimDuration = SimDuration::from_millis(500);

impl Runtime {
    fn run(&mut self, ctl_mailbox: Mailbox) {
        self.engine = Some(ScalingEngine::new(
            self.config.clone(),
            self.deps.clock.now(),
        ));
        loop {
            // 1. Commands from the handle.
            if let Ok(Command::Shutdown) = self.cmd_rx.try_recv() {
                self.shutdown_all(&ctl_mailbox);
                return;
            }
            // 2. Control messages from members.
            while let Ok(d) = ctl_mailbox.try_recv() {
                if let Ok(msg) = RmiMessage::decode(&d.payload) {
                    self.on_ctl(msg);
                }
            }
            // 3. Newly provisioned slices become members.
            let grants = self.deps.cluster.poll_ready(self.deps.clock.now());
            let grew = !grants.is_empty();
            for grant in grants {
                self.spawn_member(grant);
            }
            // 4. Crash detection + sentinel re-election. Slice revocations
            // (node failures) kill their members too.
            let revoked = self.deps.cluster.drain_revocations();
            if !revoked.is_empty() {
                let at = self.deps.clock.now();
                self.revoked_slices.extend(revoked.iter().copied());
                let victims: Vec<u64> = self
                    .members
                    .iter()
                    .filter(|(_, m)| revoked.contains(&m.slice))
                    .map(|(&uid, _)| uid)
                    .collect();
                for uid in victims {
                    if let Some(m) = self.members.get_mut(&uid) {
                        // Take the endpoint down; the skeleton thread exits
                        // on its closed mailbox and reaping does the rest.
                        m.crashed_at = Some(at);
                        self.deps.net.close(m.endpoint);
                    }
                }
            }
            let crashed = self.reap_crashed();
            if grew || crashed {
                self.publish();
                self.broadcast();
            }
            // 5. Periodic broadcast (the JGroups substitute).
            let now = self.deps.clock.now();
            let live = self
                .members
                .values()
                .filter(|m| !m.draining && m.crashed_at.is_none())
                .count() as u32;
            self.recovery.check_capacity(live, now);
            if now.saturating_since(self.last_broadcast) >= BROADCAST_EVERY {
                self.broadcast();
            }
            // 6. Burst-interval scaling.
            self.scaling_step(now);

            std::thread::sleep(TICK);
        }
    }

    fn on_ctl(&mut self, msg: RmiMessage) {
        match msg {
            RmiMessage::Load(report) => {
                if let Some(m) = self.members.get_mut(&report.uid) {
                    // First evidence of the member serving: completes the
                    // provisioning-interval measurement.
                    if !m.first_served && !report.method_stats.is_empty() {
                        m.first_served = true;
                        if let Some(t0) = m.requested_at {
                            let latency = self.deps.clock.now().saturating_since(t0);
                            self.shared
                                .stats
                                .lock()
                                .provisioning_latencies
                                .push(latency);
                        }
                    }
                }
                if report.rejected > 0 {
                    self.shared.stats.lock().rejected += u64::from(report.rejected);
                }
                self.reports.insert(report.uid, report);
            }
            RmiMessage::ShutdownReady { uid } => {
                self.finalize_member(uid, false);
                self.publish();
                self.broadcast();
            }
            _ => {}
        }
    }

    fn spawn_member(&mut self, grant: SliceGrant) {
        // A fresh grant supersedes any old revocation marker for the slice:
        // from here on, finalizing its member must release it normally.
        self.revoked_slices.remove(&grant.slice);
        let uid = self.next_uid;
        self.next_uid += 1;
        let (endpoint, mailbox) = self.deps.net.open();
        let ctx = ServiceContext::new(
            Arc::clone(&self.deps.store),
            self.config.class_name(),
            uid,
            Arc::clone(&self.deps.clock),
            Arc::clone(&self.shared.size),
        );
        let net: Arc<dyn Network> = Arc::clone(&self.deps.net) as Arc<dyn Network>;
        let mut skeleton = crate::skeleton::Skeleton::new(
            uid,
            endpoint,
            self.ctl,
            net,
            Arc::clone(&self.deps.clock),
            (self.factory)(),
            ctx,
            self.deps.trace.clone(),
            self.config.admission_config(),
        );
        if let Some(reply_cache) = self.config.reply_cache_config() {
            skeleton.set_reply_cache(reply_cache);
        }
        skeleton.set_metrics(&self.deps.metrics);
        let join = std::thread::Builder::new()
            .name(format!("erm-member-{uid}"))
            .spawn(move || skeleton.run(mailbox))
            .expect("spawn member thread");
        let requested_at = self.grant_times.get(&grant.request_id).copied();
        self.members.insert(
            uid,
            Member {
                endpoint,
                slice: grant.slice,
                join,
                draining: false,
                requested_at,
                first_served: false,
                crashed_at: None,
            },
        );
        self.deps
            .trace
            .emit(self.deps.clock.now(), TraceEvent::MemberJoined { uid });
        self.publish();
    }

    /// Removes a member from all books; `crashed` distinguishes failure from
    /// orderly drain. Exactly-once: a member already finalized (by either
    /// path — drain ack or crash reap) is gone from `members`, so a second
    /// call is a no-op.
    fn finalize_member(&mut self, uid: u64, crashed: bool) {
        let Some(member) = self.members.remove(&uid) else {
            return;
        };
        self.deps.net.close(member.endpoint);
        let now = self.deps.clock.now();
        // A revoked slice is already back in the cluster's inventory;
        // releasing it again would free a slice that may since have been
        // re-granted to another member.
        if !self.revoked_slices.remove(&member.slice) {
            let _ = self.deps.cluster.release(member.slice, now);
        }
        if !crashed {
            let _ = member.join.join();
        }
        if crashed {
            // Reclaim the dead member's kv locks and fence its owner, so
            // `synchronized` methods stop stalling on a holder that will
            // never unlock (§4.4) and a stale resurrected member cannot
            // unlock what it no longer owns.
            let _ = self.deps.store.release_owner(LockOwner::new(uid), now);
        }
        self.reports.remove(&uid);
        if crashed {
            self.deps.trace.emit(now, TraceEvent::MemberCrashed { uid });
        } else if member.draining {
            self.deps.trace.emit(now, TraceEvent::MemberDrained { uid });
        }
        let mut stats = self.shared.stats.lock();
        if crashed {
            stats.crashed += 1;
        } else if member.draining {
            stats.shrunk += 1;
        }
    }

    fn reap_crashed(&mut self) -> bool {
        // A draining member normally finalizes through its ShutdownReady
        // ack — but one whose slice was revoked mid-drain lost its endpoint
        // and can never ack, so it must be reaped here (as crashed) too.
        let dead: Vec<u64> = self
            .members
            .iter()
            .filter(|(_, m)| m.join.is_finished() && (!m.draining || m.crashed_at.is_some()))
            .map(|(&uid, _)| uid)
            .collect();
        if dead.is_empty() {
            return false;
        }
        let now = self.deps.clock.now();
        let old_sentinel = self.sentinel_uid();
        let live_before = self.members.values().filter(|m| !m.draining).count() as u32;
        // Revocation-killed members carry their actual crash time; for
        // panic-killed members detection time is the best bound we have.
        let crashed_at = dead
            .iter()
            .filter_map(|uid| self.members.get(uid).and_then(|m| m.crashed_at))
            .min()
            .unwrap_or(now);
        for uid in dead {
            self.finalize_member(uid, true);
        }
        self.recovery.on_crash(
            crashed_at,
            live_before.min(self.config.min_pool_size().max(1)),
        );
        if self.sentinel_uid() != old_sentinel {
            // §4.4: sentinel failure triggers leader election; lowest uid
            // (the royal hierarchy) wins, which BTreeMap order gives us.
            self.shared.stats.lock().elections += 1;
            if let Some(uid) = self.sentinel_uid() {
                self.recovery
                    .reelection_lag
                    .record(now.saturating_since(crashed_at));
                self.deps.trace.emit(
                    now,
                    TraceEvent::SentinelElected {
                        uid,
                        epoch: self.epoch + 1,
                    },
                );
            }
        }
        self.epoch += 1;
        true
    }

    fn sentinel_uid(&self) -> Option<u64> {
        self.members
            .iter()
            .find(|(_, m)| !m.draining)
            .map(|(&uid, _)| uid)
    }

    /// §4.2: "ElasticRMI instantiates the HyperDex on one additional Mesos
    /// slice, and continues to monitor the performance ... ElasticRMI may
    /// add additional nodes to HyperDex as necessary." One store node per
    /// eight pool members keeps the modelled store capacity ahead of the
    /// pool's shared-state traffic.
    fn scale_store(&self) {
        let live = self.members.values().filter(|m| !m.draining).count() as u32;
        let target = 1 + live / 8;
        let current = self.deps.store.nodes();
        if current < target {
            self.deps.store.add_nodes(target - current);
        }
    }

    /// Refreshes the shared snapshot read by handles and stubs.
    fn publish(&self) {
        let live: Vec<EndpointId> = self
            .members
            .values()
            .filter(|m| !m.draining)
            .map(|m| m.endpoint)
            .collect();
        let sentinel = self
            .members
            .iter()
            .find(|(_, m)| !m.draining)
            .map_or(EndpointId(u64::MAX), |(_, m)| m.endpoint);
        self.shared.size.store(live.len() as u32, Ordering::SeqCst);
        *self.shared.members.write() = live;
        *self.shared.sentinel.write() = sentinel;
        self.shared.stats.lock().epoch = self.epoch;
        self.scale_store();
    }

    fn broadcast(&mut self) {
        self.last_broadcast = self.deps.clock.now();
        let sentinel_uid = self.sentinel_uid().unwrap_or(0);
        let states: Vec<MemberState> = self
            .members
            .iter()
            .filter(|(_, m)| !m.draining)
            .map(|(&uid, m)| MemberState {
                endpoint: m.endpoint,
                uid,
                pending: self.reports.get(&uid).map_or(0, |r| r.pending),
            })
            .collect();
        let msg = RmiMessage::StateBroadcast {
            epoch: self.epoch,
            sentinel_uid,
            members: states,
        };
        let encoded = msg.encode();
        for member in self.members.values() {
            let _ = self
                .deps
                .net
                .send(self.ctl, member.endpoint, encoded.clone());
        }
    }

    fn scaling_step(&mut self, now: SimTime) {
        let engine = self.engine.as_mut().expect("engine initialized in run()");
        match self.collect_until {
            None => {
                if engine.is_due(now) && !self.members.is_empty() {
                    // Burst boundary: poll all members, then decide once the
                    // reports are in (or the grace period lapses).
                    self.reports.clear();
                    let poll = RmiMessage::PollLoad.encode();
                    for m in self.members.values().filter(|m| !m.draining) {
                        let _ = self.deps.net.send(self.ctl, m.endpoint, poll.clone());
                    }
                    self.collect_until = Some(now + COLLECT_GRACE);
                }
            }
            Some(deadline) => {
                let live = self.members.values().filter(|m| !m.draining).count();
                if self.reports.len() >= live || now >= deadline {
                    self.collect_until = None;
                    self.decide_and_act(now);
                }
            }
        }
    }

    fn decide_and_act(&mut self, now: SimTime) {
        let live: Vec<&LoadReport> = self.reports.values().collect();
        let pool_size = self.members.values().filter(|m| !m.draining).count() as u32;
        let n = live.len().max(1) as f32;
        let mut sample = PoolSample {
            pool_size,
            avg_cpu: live.iter().map(|r| r.busy).sum::<f32>() / n,
            avg_ram: live.iter().map(|r| r.ram).sum::<f32>() / n,
            fine_votes: live.iter().filter_map(|r| r.fine_vote).collect(),
            desired_size: None,
            // Queueing delay is a worst-member signal: one saturated member
            // is enough reason to grow, since bin packing can only shuffle
            // load that fits somewhere.
            queue_delay_p99: SimDuration::from_micros(
                live.iter().map(|r| r.queue_delay_p99_us).max().unwrap_or(0),
            ),
            rejected: live.iter().map(|r| r.rejected).sum(),
        };
        if let Some(decider) = self.decider.as_mut() {
            sample.desired_size = Some(decider.desired_pool_size(&sample));
        }
        *self.shared.last_reports.lock() = self.reports.values().cloned().collect();
        let (decision, why) = self
            .engine
            .as_mut()
            .expect("engine initialized")
            .poll_explained(now, &sample);
        // The rule explanation precedes the decision in the trace so span
        // reconstruction can pair each ScaleDecision with its cause.
        if let Some(why) = why {
            self.deps.trace.emit(
                now,
                TraceEvent::RuleFired {
                    rule: why.rule,
                    observed_milli: why.observed_milli,
                    threshold_milli: why.threshold_milli,
                },
            );
        }
        match decision {
            ScalingDecision::Grow(k) => {
                self.deps.trace.emit(
                    now,
                    TraceEvent::ScaleDecision {
                        pool_size,
                        delta: i64::from(k),
                    },
                );
                if let Ok(outcome) = self.deps.cluster.request_slices(k, now) {
                    if outcome.granted > 0 {
                        self.grant_times.insert(outcome.request_id, now);
                        self.shared.stats.lock().grown += outcome.granted;
                    }
                }
            }
            ScalingDecision::Shrink(k) => {
                self.deps.trace.emit(
                    now,
                    TraceEvent::ScaleDecision {
                        pool_size,
                        delta: -i64::from(k),
                    },
                );
                // Remove the youngest members first and never the sentinel.
                let sentinel = self.sentinel_uid();
                let victims: Vec<u64> = self
                    .members
                    .iter()
                    .rev()
                    .filter(|(uid, m)| !m.draining && Some(**uid) != sentinel)
                    .take(k as usize)
                    .map(|(&uid, _)| uid)
                    .collect();
                for uid in victims {
                    if let Some(m) = self.members.get_mut(&uid) {
                        m.draining = true;
                        let _ =
                            self.deps
                                .net
                                .send(self.ctl, m.endpoint, RmiMessage::Shutdown.encode());
                    }
                }
                self.publish();
                self.broadcast();
            }
            ScalingDecision::Hold => {}
        }
        // Server-side load balancing from the same reports (§4.3).
        self.rebalance();
    }

    fn rebalance(&mut self) {
        let loads: Vec<MemberLoad> = self
            .members
            .iter()
            .filter(|(_, m)| !m.draining)
            .filter_map(|(uid, m)| {
                self.reports.get(uid).map(|r| MemberLoad {
                    endpoint: m.endpoint,
                    pending: r.pending,
                })
            })
            .collect();
        if loads.len() < 2 {
            return;
        }
        // Per-member target: the configured overload capacity when set,
        // otherwise the legacy mean-pending heuristic.
        let capacity = self.config.overload_capacity().unwrap_or_else(|| {
            let total: u32 = loads.iter().map(|l| l.pending).sum();
            total.div_ceil(loads.len() as u32)
        });
        for entry in plan_redirects(&loads, capacity.max(1)) {
            let _ = self.deps.net.send(
                self.ctl,
                entry.from,
                RmiMessage::Rebalance {
                    to: entry.to,
                    count: entry.count,
                }
                .encode(),
            );
        }
    }

    fn shutdown_all(&mut self, ctl_mailbox: &Mailbox) {
        for m in self.members.values_mut() {
            m.draining = true;
            let _ = self
                .deps
                .net
                .send(self.ctl, m.endpoint, RmiMessage::Shutdown.encode());
        }
        self.publish();
        // Drain deadline in sim time: under a virtual clock the pool waits
        // for its members however long the wall takes, and force-reaps only
        // if the *harness* lets 5 sim-seconds pass — shutdown can no longer
        // flake because a paused clock made wall time race the drain.
        let deadline = self.deps.clock.now() + SimDuration::from_secs(5);
        while !self.members.is_empty() && self.deps.clock.now() < deadline {
            while let Ok(d) = ctl_mailbox.try_recv() {
                if let Ok(RmiMessage::ShutdownReady { uid }) = RmiMessage::decode(&d.payload) {
                    self.finalize_member(uid, false);
                }
            }
            // Also reap members whose threads exited without a ready ack.
            let finished: Vec<u64> = self
                .members
                .iter()
                .filter(|(_, m)| m.join.is_finished())
                .map(|(&uid, _)| uid)
                .collect();
            for uid in finished {
                self.finalize_member(uid, false);
            }
            std::thread::sleep(TICK);
        }
        // Force-release anything left.
        let leftovers: Vec<u64> = self.members.keys().copied().collect();
        for uid in leftovers {
            self.finalize_member(uid, true);
        }
        self.deps.net.close(self.ctl);
        self.publish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RemoteError;
    use erm_cluster::{ClusterConfig, LatencyModel, NodeId, ResourceManager};
    use erm_kvstore::StoreConfig;
    use erm_sim::{Clock, VirtualClock};
    use erm_transport::InProcNetwork;

    struct Idle;
    impl ElasticService for Idle {
        fn dispatch(
            &mut self,
            method: &str,
            _args: &[u8],
            _ctx: &mut ServiceContext,
        ) -> Result<Vec<u8>, RemoteError> {
            Err(RemoteError::no_such_method(method))
        }
    }

    /// A tiny cluster (1 node unless asked otherwise) with instant
    /// provisioning, so grants are collectable immediately.
    fn cluster(nodes: u32) -> ClusterHandle {
        ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes,
            slices_per_node: 1,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        }))
    }

    /// Builds a `Runtime` directly (no control-loop thread), with a virtual
    /// clock, so finalize/reap logic is testable deterministically.
    fn runtime(cluster: ClusterHandle, clock: VirtualClock, metrics: MetricsHandle) -> Runtime {
        let net: Arc<InProcNetwork> = Arc::new(InProcNetwork::new());
        let deps = PoolDeps {
            cluster,
            net,
            store: Arc::new(Store::new(StoreConfig::default())),
            clock: Arc::new(clock),
            trace: TraceHandle::disabled(),
            metrics: metrics.clone(),
        };
        let config = PoolConfig::builder("Churn").build().unwrap();
        Runtime {
            config,
            recovery: RecoveryTracker::new(&metrics),
            deps: deps.clone(),
            factory: Arc::new(|| Box::new(Idle)),
            decider: None,
            shared: Arc::new(PoolShared {
                sentinel: RwLock::new(EndpointId(u64::MAX)),
                members: RwLock::new(Vec::new()),
                size: Arc::new(AtomicU32::new(0)),
                stats: Mutex::new(PoolStats::default()),
                last_reports: Mutex::new(Vec::new()),
            }),
            ctl: deps.net.open().0,
            cmd_rx: unbounded().1,
            members: BTreeMap::new(),
            next_uid: 0,
            epoch: 0,
            reports: BTreeMap::new(),
            engine: None,
            collect_until: None,
            grant_times: BTreeMap::new(),
            last_broadcast: SimTime::ZERO,
            revoked_slices: BTreeSet::new(),
        }
    }

    /// A member whose skeleton thread has already exited — as after a crash.
    fn dead_member(rt: &Runtime, slice: SliceId) -> Member {
        let (endpoint, _mailbox) = rt.deps.net.open();
        let join = std::thread::spawn(|| {});
        while !join.is_finished() {
            std::thread::sleep(Duration::from_millis(1));
        }
        Member {
            endpoint,
            slice,
            join,
            draining: false,
            requested_at: None,
            first_served: false,
            crashed_at: None,
        }
    }

    fn grant_one(cluster: &ClusterHandle, at: SimTime) -> SliceId {
        cluster.request_slices(1, at).unwrap();
        cluster.poll_ready(at).pop().expect("instant grant").slice
    }

    #[test]
    fn finalize_skips_release_for_revoked_slice() {
        // Regression: a crashed member's slice was revoked by fail_node and
        // immediately re-granted after repair. Releasing it again during
        // finalize would free the new member's slice underneath it.
        let cluster = cluster(1);
        let slice = grant_one(&cluster, SimTime::ZERO);
        let mut rt = runtime(
            cluster.clone(),
            VirtualClock::new(),
            MetricsHandle::disabled(),
        );
        rt.members.insert(0, dead_member(&rt, slice));

        cluster.fail_node(NodeId(0));
        rt.revoked_slices.extend(cluster.drain_revocations());
        cluster.repair_node(NodeId(0));
        let regrant = grant_one(&cluster, SimTime::from_secs(1));
        assert_eq!(regrant, slice, "the sole slice is granted again");

        rt.finalize_member(0, true);
        assert_eq!(
            cluster.slices_in_use(),
            1,
            "finalize must not release a slice the cluster already revoked"
        );
        assert!(rt.revoked_slices.is_empty(), "marker consumed");
    }

    #[test]
    fn finalize_releases_unrevoked_slices_normally() {
        let cluster = cluster(1);
        let slice = grant_one(&cluster, SimTime::ZERO);
        let mut rt = runtime(
            cluster.clone(),
            VirtualClock::new(),
            MetricsHandle::disabled(),
        );
        rt.members.insert(0, dead_member(&rt, slice));
        rt.finalize_member(0, true);
        assert_eq!(cluster.slices_in_use(), 0);
        assert_eq!(cluster.free_slices(), 1);
    }

    #[test]
    fn draining_and_revoked_member_is_reaped_exactly_once() {
        // A member mid scale-in whose node dies: it can never ack its drain,
        // so the crash path must finalize it — once.
        let cluster = cluster(1);
        let slice = grant_one(&cluster, SimTime::ZERO);
        let mut rt = runtime(
            cluster.clone(),
            VirtualClock::new(),
            MetricsHandle::disabled(),
        );
        let mut member = dead_member(&rt, slice);
        member.draining = true;
        member.crashed_at = Some(SimTime::ZERO);
        rt.members.insert(0, member);
        cluster.fail_node(NodeId(0));
        rt.revoked_slices.extend(cluster.drain_revocations());

        assert!(rt.reap_crashed(), "draining+revoked member must be reaped");
        assert!(rt.members.is_empty());
        assert!(!rt.reap_crashed(), "second reap finds nothing");
        // A drain ack arriving after the reap must be a no-op.
        rt.finalize_member(0, false);
        let stats = rt.shared.stats.lock().clone();
        assert_eq!((stats.crashed, stats.shrunk), (1, 0));
    }

    #[test]
    fn draining_member_without_revocation_waits_for_its_ack() {
        // The two-phase drain stays intact: a drained member whose thread
        // has exited but whose slice was not revoked finalizes through its
        // ShutdownReady ack, not the crash path.
        let cluster = cluster(1);
        let slice = grant_one(&cluster, SimTime::ZERO);
        let mut rt = runtime(
            cluster.clone(),
            VirtualClock::new(),
            MetricsHandle::disabled(),
        );
        let mut member = dead_member(&rt, slice);
        member.draining = true;
        rt.members.insert(0, member);
        assert!(!rt.reap_crashed());
        assert_eq!(rt.members.len(), 1);
    }

    #[test]
    fn reap_reclaims_crashed_members_locks() {
        let cluster = cluster(1);
        let slice = grant_one(&cluster, SimTime::ZERO);
        let clock = VirtualClock::new();
        let mut rt = runtime(cluster, clock.clone(), MetricsHandle::disabled());
        let store = Arc::clone(&rt.deps.store);
        let ttl = SimDuration::from_secs(3600);
        // The member dies holding its class lock, TTL far in the future.
        assert!(store.try_lock("Churn", LockOwner::new(0), clock.now(), ttl));
        rt.members.insert(0, dead_member(&rt, slice));

        assert!(rt.reap_crashed());
        assert!(store.held_locks().is_empty(), "orphaned lock reclaimed");
        // Waiters proceed immediately; the ghost is fenced out.
        assert!(store.try_lock("Churn", LockOwner::new(1), clock.now(), ttl));
        assert!(!store.try_lock("Churn", LockOwner::new(0), clock.now(), ttl));
    }

    #[test]
    fn recovery_lags_are_recorded() {
        let cluster = cluster(2);
        let (metrics, registry) = MetricsHandle::shared();
        let clock = VirtualClock::new();
        let mut rt = runtime(cluster.clone(), clock.clone(), metrics);
        let s0 = grant_one(&cluster, SimTime::ZERO);
        let s1 = grant_one(&cluster, SimTime::ZERO);
        // Sentinel (uid 0) crashed at t=0; reaped at t=2s with uid 1 alive.
        let mut sentinel = dead_member(&rt, s0);
        sentinel.crashed_at = Some(SimTime::ZERO);
        rt.members.insert(0, sentinel);
        let (survivor_ep, _mb) = rt.deps.net.open();
        rt.members.insert(
            1,
            Member {
                endpoint: survivor_ep,
                slice: s1,
                join: std::thread::spawn(|| std::thread::sleep(Duration::from_secs(2))),
                draining: false,
                requested_at: None,
                first_served: false,
                crashed_at: None,
            },
        );
        clock.advance(SimDuration::from_secs(2));
        assert!(rt.reap_crashed());
        // Capacity is restored once the live count is back at the pre-crash
        // target (min_pool_size, here 2): one second later the replacement
        // member is up.
        clock.advance(SimDuration::from_secs(1));
        rt.recovery.check_capacity(1, clock.now());
        assert_eq!(
            registry
                .snapshot(clock.now())
                .histograms
                .iter()
                .find(|(n, _)| *n == "pool.recovery.capacity.lag")
                .unwrap()
                .1
                .count(),
            0,
            "window stays open below the pre-crash target"
        );
        rt.recovery.check_capacity(2, clock.now());

        let snap = registry.snapshot(clock.now());
        let find = |name: &str| {
            snap.histograms
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("{name} registered"))
                .1
                .clone()
        };
        let reelection = find("pool.recovery.reelection.lag");
        assert_eq!(reelection.count(), 1);
        assert_eq!(reelection.max(), Some(SimDuration::from_secs(2)));
        let capacity = find("pool.recovery.capacity.lag");
        assert_eq!(capacity.count(), 1);
        assert_eq!(capacity.max(), Some(SimDuration::from_secs(3)));
        assert_eq!(rt.shared.stats.lock().elections, 1);
    }
}
