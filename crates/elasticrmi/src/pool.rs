//! The elastic object pool runtime (paper §2.4–§2.5, §4).
//!
//! `ElasticPool::instantiate` plays the role of constructing an elastic
//! class in ElasticRMI: it asks the cluster manager for `min_pool_size`
//! slices (accepting `l < k` under scarcity), starts one skeleton-hosted
//! service instance per granted slice, elects the lowest-uid member
//! sentinel, and then runs the control loop that the paper's runtime system
//! performs:
//!
//! * polls every member for load each burst interval,
//! * feeds the aggregated [`PoolSample`] to the [`ScalingEngine`],
//! * grows by requesting new slices (members join as provisioning
//!   completes) and shrinks via the two-phase drain handshake,
//! * broadcasts membership (epoch, sentinel, loads) to all skeletons,
//! * plans server-side rebalancing with first-fit bin packing, and
//! * detects member crashes, re-electing the sentinel by lowest uid.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};
use erm_cluster::{ClusterHandle, SliceGrant, SliceId};
use erm_kvstore::Store;
use erm_metrics::{MetricsHandle, TraceEvent, TraceHandle};
use erm_sim::{SharedClock, SimDuration, SimTime};
use erm_transport::{EndpointId, Host, Mailbox, Network};
use parking_lot::{Mutex, RwLock};

use crate::api::{ElasticService, ServiceContext};
use crate::balance::{plan_redirects, MemberLoad};
use crate::config::{PoolConfig, ScalingPolicy};
use crate::error::PoolError;
use crate::message::{LoadReport, MemberState, RmiMessage};
use crate::scaling::{PoolSample, ScalingDecision, ScalingEngine};
use crate::stub::{ClientLb, Stub};

/// Creates one service instance per pool member.
pub type ServiceFactory = Arc<dyn Fn() -> Box<dyn ElasticService> + Send + Sync>;

/// Application-level scaling decisions (the paper's `Decider`, §3.3): an
/// external component with a global view dictates each pool's desired size.
pub trait Decider: Send + 'static {
    /// Returns the desired pool size given the latest aggregated sample.
    fn desired_pool_size(&mut self, sample: &PoolSample) -> u32;
}

impl<F: FnMut(&PoolSample) -> u32 + Send + 'static> Decider for F {
    fn desired_pool_size(&mut self, sample: &PoolSample) -> u32 {
        self(sample)
    }
}

/// External dependencies of a pool: the cluster, the network host, the
/// shared store, the clock, and the (optional) trace sink.
#[derive(Clone)]
pub struct PoolDeps {
    /// The Mesos-like resource manager granting slices.
    pub cluster: ClusterHandle,
    /// The network to host skeleton endpoints on.
    pub net: Arc<dyn Host>,
    /// The HyperDex-like store for shared state.
    pub store: Arc<Store>,
    /// Time source (system clock in production, virtual in tests).
    pub clock: SharedClock,
    /// Trace sink for invocation and elasticity events (disabled by
    /// default; see [`erm_metrics::TraceSink`]).
    pub trace: TraceHandle,
    /// Metrics registry the pool's skeletons register their instruments on
    /// (`skeleton.queue.delay`, `skeleton.service.time`). Disabled by
    /// default; see [`erm_metrics::Registry`].
    pub metrics: MetricsHandle,
}

impl std::fmt::Debug for PoolDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolDeps").finish_non_exhaustive()
    }
}

/// Lifetime counters for one pool.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolStats {
    /// Members added after initial instantiation.
    pub grown: u32,
    /// Members removed by scale-in.
    pub shrunk: u32,
    /// Members lost to crashes.
    pub crashed: u32,
    /// Sentinel re-elections.
    pub elections: u32,
    /// Current membership epoch.
    pub epoch: u64,
    /// Provisioning latencies (request → member serving) observed.
    pub provisioning_latencies: Vec<SimDuration>,
    /// `Overloaded` rejections reported by members across all burst
    /// intervals.
    pub rejected: u64,
}

#[derive(Debug)]
struct PoolShared {
    sentinel: RwLock<EndpointId>,
    members: RwLock<Vec<EndpointId>>,
    size: Arc<AtomicU32>,
    stats: Mutex<PoolStats>,
    last_reports: Mutex<Vec<LoadReport>>,
}

enum Command {
    Shutdown,
}

/// Handle to a running elastic object pool.
///
/// Dropping the handle shuts the pool down (draining members and releasing
/// their slices).
pub struct ElasticPool {
    shared: Arc<PoolShared>,
    net: Arc<dyn Host>,
    clock: SharedClock,
    trace: TraceHandle,
    cmd_tx: Sender<Command>,
    runtime: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ElasticPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElasticPool")
            .field("size", &self.size())
            .field("sentinel", &self.sentinel())
            .finish()
    }
}

impl ElasticPool {
    /// Instantiates the pool: requests `min_pool_size` slices, starts one
    /// member per granted slice (fewer than requested is accepted, §4.2),
    /// and launches the control loop.
    ///
    /// `decider` supplies application-level decisions and is required
    /// exactly when the policy is [`ScalingPolicy::AppLevel`].
    ///
    /// # Errors
    ///
    /// [`PoolError::NoCapacity`] when the cluster grants no slices at all;
    /// [`PoolError::Cluster`] when the cluster master is down.
    ///
    /// # Panics
    ///
    /// Panics if `decider` presence does not match the policy.
    pub fn instantiate(
        config: PoolConfig,
        factory: ServiceFactory,
        deps: PoolDeps,
        decider: Option<Box<dyn Decider>>,
    ) -> Result<ElasticPool, PoolError> {
        assert_eq!(
            matches!(config.policy(), ScalingPolicy::AppLevel),
            decider.is_some(),
            "a Decider must be supplied iff the policy is AppLevel"
        );
        let now = deps.clock.now();
        let outcome = deps
            .cluster
            .request_slices(config.min_pool_size(), now)
            .map_err(|e| PoolError::Cluster(e.to_string()))?;
        if outcome.granted == 0 {
            return Err(PoolError::NoCapacity);
        }

        let shared = Arc::new(PoolShared {
            sentinel: RwLock::new(EndpointId(u64::MAX)),
            members: RwLock::new(Vec::new()),
            size: Arc::new(AtomicU32::new(0)),
            stats: Mutex::new(PoolStats::default()),
            last_reports: Mutex::new(Vec::new()),
        });
        let (cmd_tx, cmd_rx) = unbounded();
        let (ctl, ctl_mailbox) = deps.net.open();
        let mut runtime = Runtime {
            config,
            deps: deps.clone(),
            factory,
            decider,
            shared: Arc::clone(&shared),
            ctl,
            cmd_rx,
            members: BTreeMap::new(),
            next_uid: 0,
            epoch: 0,
            reports: BTreeMap::new(),
            engine: None,
            collect_until: None,
            grant_times: BTreeMap::new(),
            last_broadcast: SimTime::ZERO,
        };
        runtime.grant_times.insert(outcome.request_id, now);
        let handle = std::thread::Builder::new()
            .name("elasticrmi-pool".to_string())
            .spawn(move || runtime.run(ctl_mailbox))
            .expect("spawn pool runtime");

        let pool = ElasticPool {
            shared,
            net: deps.net,
            clock: deps.clock,
            trace: deps.trace,
            cmd_tx,
            runtime: Some(handle),
        };
        // Wait for the initial members to come up (bounded).
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while pool.size() == 0 {
            if std::time::Instant::now() > deadline {
                return Err(PoolError::Cluster(
                    "initial members failed to provision in time".to_string(),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(pool)
    }

    /// Current number of live members — the paper's `getPoolSize()`.
    pub fn size(&self) -> u32 {
        self.shared.size.load(Ordering::SeqCst)
    }

    /// The sentinel's invocation endpoint: what a client needs to connect.
    pub fn sentinel(&self) -> EndpointId {
        *self.shared.sentinel.read()
    }

    /// Current member endpoints.
    pub fn members(&self) -> Vec<EndpointId> {
        self.shared.members.read().clone()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> PoolStats {
        self.shared.stats.lock().clone()
    }

    /// The load reports collected at the most recent burst interval — what
    /// the sentinel saw when it last made a scaling decision (per-member
    /// pending counts, busy/RAM utilization, fine votes, method stats).
    pub fn last_reports(&self) -> Vec<LoadReport> {
        self.shared.last_reports.lock().clone()
    }

    /// Opens a client stub against this pool.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::RmiError::SentinelUnreachable`] if discovery
    /// fails.
    pub fn stub(&self, lb: ClientLb) -> Result<Stub, crate::RmiError> {
        let (ep, mailbox) = self.net.open();
        let net: Arc<dyn Network> = Arc::clone(&self.net) as Arc<dyn Network>;
        let mut stub = Stub::connect(
            net,
            ep,
            mailbox,
            self.sentinel(),
            lb,
            Arc::clone(&self.clock),
        )?;
        stub.set_trace(self.trace.clone());
        Ok(stub)
    }

    /// Shuts the pool down: drains every member and releases all slices.
    /// Idempotent; also performed on drop.
    pub fn shutdown(&mut self) {
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(handle) = self.runtime.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ElasticPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct Member {
    endpoint: EndpointId,
    slice: SliceId,
    join: JoinHandle<()>,
    draining: bool,
    requested_at: Option<SimTime>,
    first_served: bool,
}

struct Runtime {
    config: PoolConfig,
    deps: PoolDeps,
    factory: ServiceFactory,
    decider: Option<Box<dyn Decider>>,
    shared: Arc<PoolShared>,
    ctl: EndpointId,
    cmd_rx: Receiver<Command>,
    members: BTreeMap<u64, Member>,
    next_uid: u64,
    epoch: u64,
    reports: BTreeMap<u64, LoadReport>,
    engine: Option<ScalingEngine>,
    collect_until: Option<std::time::Instant>,
    grant_times: BTreeMap<u64, SimTime>,
    last_broadcast: SimTime,
}

const TICK: Duration = Duration::from_millis(2);
const COLLECT_GRACE: Duration = Duration::from_millis(100);
const BROADCAST_EVERY: SimDuration = SimDuration::from_millis(500);

impl Runtime {
    fn run(&mut self, ctl_mailbox: Mailbox) {
        self.engine = Some(ScalingEngine::new(
            self.config.clone(),
            self.deps.clock.now(),
        ));
        loop {
            // 1. Commands from the handle.
            if let Ok(Command::Shutdown) = self.cmd_rx.try_recv() {
                self.shutdown_all(&ctl_mailbox);
                return;
            }
            // 2. Control messages from members.
            while let Ok(d) = ctl_mailbox.try_recv() {
                if let Ok(msg) = RmiMessage::decode(&d.payload) {
                    self.on_ctl(msg);
                }
            }
            // 3. Newly provisioned slices become members.
            let grants = self.deps.cluster.poll_ready(self.deps.clock.now());
            let grew = !grants.is_empty();
            for grant in grants {
                self.spawn_member(grant);
            }
            // 4. Crash detection + sentinel re-election. Slice revocations
            // (node failures) kill their members too.
            let revoked = self.deps.cluster.drain_revocations();
            if !revoked.is_empty() {
                let victims: Vec<u64> = self
                    .members
                    .iter()
                    .filter(|(_, m)| revoked.contains(&m.slice))
                    .map(|(&uid, _)| uid)
                    .collect();
                for uid in victims {
                    if let Some(m) = self.members.get(&uid) {
                        // Take the endpoint down; the skeleton thread exits
                        // on its closed mailbox and reaping does the rest.
                        self.deps.net.close(m.endpoint);
                    }
                }
            }
            let crashed = self.reap_crashed();
            if grew || crashed {
                self.publish();
                self.broadcast();
            }
            // 5. Periodic broadcast (the JGroups substitute).
            let now = self.deps.clock.now();
            if now.saturating_since(self.last_broadcast) >= BROADCAST_EVERY {
                self.broadcast();
            }
            // 6. Burst-interval scaling.
            self.scaling_step(now);

            std::thread::sleep(TICK);
        }
    }

    fn on_ctl(&mut self, msg: RmiMessage) {
        match msg {
            RmiMessage::Load(report) => {
                if let Some(m) = self.members.get_mut(&report.uid) {
                    // First evidence of the member serving: completes the
                    // provisioning-interval measurement.
                    if !m.first_served && !report.method_stats.is_empty() {
                        m.first_served = true;
                        if let Some(t0) = m.requested_at {
                            let latency = self.deps.clock.now().saturating_since(t0);
                            self.shared
                                .stats
                                .lock()
                                .provisioning_latencies
                                .push(latency);
                        }
                    }
                }
                if report.rejected > 0 {
                    self.shared.stats.lock().rejected += u64::from(report.rejected);
                }
                self.reports.insert(report.uid, report);
            }
            RmiMessage::ShutdownReady { uid } => {
                self.finalize_member(uid, false);
                self.publish();
                self.broadcast();
            }
            _ => {}
        }
    }

    fn spawn_member(&mut self, grant: SliceGrant) {
        let uid = self.next_uid;
        self.next_uid += 1;
        let (endpoint, mailbox) = self.deps.net.open();
        let ctx = ServiceContext::new(
            Arc::clone(&self.deps.store),
            self.config.class_name(),
            uid,
            Arc::clone(&self.deps.clock),
            Arc::clone(&self.shared.size),
        );
        let net: Arc<dyn Network> = Arc::clone(&self.deps.net) as Arc<dyn Network>;
        let mut skeleton = crate::skeleton::Skeleton::new(
            uid,
            endpoint,
            self.ctl,
            net,
            Arc::clone(&self.deps.clock),
            (self.factory)(),
            ctx,
            self.deps.trace.clone(),
            self.config.admission_config(),
        );
        skeleton.set_metrics(&self.deps.metrics);
        let join = std::thread::Builder::new()
            .name(format!("erm-member-{uid}"))
            .spawn(move || skeleton.run(mailbox))
            .expect("spawn member thread");
        let requested_at = self.grant_times.get(&grant.request_id).copied();
        self.members.insert(
            uid,
            Member {
                endpoint,
                slice: grant.slice,
                join,
                draining: false,
                requested_at,
                first_served: false,
            },
        );
        self.deps
            .trace
            .emit(self.deps.clock.now(), TraceEvent::MemberJoined { uid });
        self.publish();
    }

    /// Removes a member from all books; `crashed` distinguishes failure from
    /// orderly drain.
    fn finalize_member(&mut self, uid: u64, crashed: bool) {
        let Some(member) = self.members.remove(&uid) else {
            return;
        };
        self.deps.net.close(member.endpoint);
        let _ = self
            .deps
            .cluster
            .release(member.slice, self.deps.clock.now());
        if !crashed {
            let _ = member.join.join();
        }
        self.reports.remove(&uid);
        let now = self.deps.clock.now();
        if crashed {
            self.deps.trace.emit(now, TraceEvent::MemberCrashed { uid });
        } else if member.draining {
            self.deps.trace.emit(now, TraceEvent::MemberDrained { uid });
        }
        let mut stats = self.shared.stats.lock();
        if crashed {
            stats.crashed += 1;
        } else if member.draining {
            stats.shrunk += 1;
        }
    }

    fn reap_crashed(&mut self) -> bool {
        let dead: Vec<u64> = self
            .members
            .iter()
            .filter(|(_, m)| m.join.is_finished() && !m.draining)
            .map(|(&uid, _)| uid)
            .collect();
        if dead.is_empty() {
            return false;
        }
        let old_sentinel = self.sentinel_uid();
        for uid in dead {
            self.finalize_member(uid, true);
        }
        if self.sentinel_uid() != old_sentinel {
            // §4.4: sentinel failure triggers leader election; lowest uid
            // (the royal hierarchy) wins, which BTreeMap order gives us.
            self.shared.stats.lock().elections += 1;
            if let Some(uid) = self.sentinel_uid() {
                self.deps.trace.emit(
                    self.deps.clock.now(),
                    TraceEvent::SentinelElected {
                        uid,
                        epoch: self.epoch + 1,
                    },
                );
            }
        }
        self.epoch += 1;
        true
    }

    fn sentinel_uid(&self) -> Option<u64> {
        self.members
            .iter()
            .find(|(_, m)| !m.draining)
            .map(|(&uid, _)| uid)
    }

    /// §4.2: "ElasticRMI instantiates the HyperDex on one additional Mesos
    /// slice, and continues to monitor the performance ... ElasticRMI may
    /// add additional nodes to HyperDex as necessary." One store node per
    /// eight pool members keeps the modelled store capacity ahead of the
    /// pool's shared-state traffic.
    fn scale_store(&self) {
        let live = self.members.values().filter(|m| !m.draining).count() as u32;
        let target = 1 + live / 8;
        let current = self.deps.store.nodes();
        if current < target {
            self.deps.store.add_nodes(target - current);
        }
    }

    /// Refreshes the shared snapshot read by handles and stubs.
    fn publish(&self) {
        let live: Vec<EndpointId> = self
            .members
            .values()
            .filter(|m| !m.draining)
            .map(|m| m.endpoint)
            .collect();
        let sentinel = self
            .members
            .iter()
            .find(|(_, m)| !m.draining)
            .map_or(EndpointId(u64::MAX), |(_, m)| m.endpoint);
        self.shared.size.store(live.len() as u32, Ordering::SeqCst);
        *self.shared.members.write() = live;
        *self.shared.sentinel.write() = sentinel;
        self.shared.stats.lock().epoch = self.epoch;
        self.scale_store();
    }

    fn broadcast(&mut self) {
        self.last_broadcast = self.deps.clock.now();
        let sentinel_uid = self.sentinel_uid().unwrap_or(0);
        let states: Vec<MemberState> = self
            .members
            .iter()
            .filter(|(_, m)| !m.draining)
            .map(|(&uid, m)| MemberState {
                endpoint: m.endpoint,
                uid,
                pending: self.reports.get(&uid).map_or(0, |r| r.pending),
            })
            .collect();
        let msg = RmiMessage::StateBroadcast {
            epoch: self.epoch,
            sentinel_uid,
            members: states,
        };
        let encoded = msg.encode();
        for member in self.members.values() {
            let _ = self
                .deps
                .net
                .send(self.ctl, member.endpoint, encoded.clone());
        }
    }

    fn scaling_step(&mut self, now: SimTime) {
        let engine = self.engine.as_mut().expect("engine initialized in run()");
        match self.collect_until {
            None => {
                if engine.is_due(now) && !self.members.is_empty() {
                    // Burst boundary: poll all members, then decide once the
                    // reports are in (or the grace period lapses).
                    self.reports.clear();
                    let poll = RmiMessage::PollLoad.encode();
                    for m in self.members.values().filter(|m| !m.draining) {
                        let _ = self.deps.net.send(self.ctl, m.endpoint, poll.clone());
                    }
                    self.collect_until = Some(std::time::Instant::now() + COLLECT_GRACE);
                }
            }
            Some(deadline) => {
                let live = self.members.values().filter(|m| !m.draining).count();
                if self.reports.len() >= live || std::time::Instant::now() >= deadline {
                    self.collect_until = None;
                    self.decide_and_act(now);
                }
            }
        }
    }

    fn decide_and_act(&mut self, now: SimTime) {
        let live: Vec<&LoadReport> = self.reports.values().collect();
        let pool_size = self.members.values().filter(|m| !m.draining).count() as u32;
        let n = live.len().max(1) as f32;
        let mut sample = PoolSample {
            pool_size,
            avg_cpu: live.iter().map(|r| r.busy).sum::<f32>() / n,
            avg_ram: live.iter().map(|r| r.ram).sum::<f32>() / n,
            fine_votes: live.iter().filter_map(|r| r.fine_vote).collect(),
            desired_size: None,
            // Queueing delay is a worst-member signal: one saturated member
            // is enough reason to grow, since bin packing can only shuffle
            // load that fits somewhere.
            queue_delay_p99: SimDuration::from_micros(
                live.iter().map(|r| r.queue_delay_p99_us).max().unwrap_or(0),
            ),
            rejected: live.iter().map(|r| r.rejected).sum(),
        };
        if let Some(decider) = self.decider.as_mut() {
            sample.desired_size = Some(decider.desired_pool_size(&sample));
        }
        *self.shared.last_reports.lock() = self.reports.values().cloned().collect();
        let (decision, why) = self
            .engine
            .as_mut()
            .expect("engine initialized")
            .poll_explained(now, &sample);
        // The rule explanation precedes the decision in the trace so span
        // reconstruction can pair each ScaleDecision with its cause.
        if let Some(why) = why {
            self.deps.trace.emit(
                now,
                TraceEvent::RuleFired {
                    rule: why.rule,
                    observed_milli: why.observed_milli,
                    threshold_milli: why.threshold_milli,
                },
            );
        }
        match decision {
            ScalingDecision::Grow(k) => {
                self.deps.trace.emit(
                    now,
                    TraceEvent::ScaleDecision {
                        pool_size,
                        delta: i64::from(k),
                    },
                );
                if let Ok(outcome) = self.deps.cluster.request_slices(k, now) {
                    if outcome.granted > 0 {
                        self.grant_times.insert(outcome.request_id, now);
                        self.shared.stats.lock().grown += outcome.granted;
                    }
                }
            }
            ScalingDecision::Shrink(k) => {
                self.deps.trace.emit(
                    now,
                    TraceEvent::ScaleDecision {
                        pool_size,
                        delta: -i64::from(k),
                    },
                );
                // Remove the youngest members first and never the sentinel.
                let sentinel = self.sentinel_uid();
                let victims: Vec<u64> = self
                    .members
                    .iter()
                    .rev()
                    .filter(|(uid, m)| !m.draining && Some(**uid) != sentinel)
                    .take(k as usize)
                    .map(|(&uid, _)| uid)
                    .collect();
                for uid in victims {
                    if let Some(m) = self.members.get_mut(&uid) {
                        m.draining = true;
                        let _ =
                            self.deps
                                .net
                                .send(self.ctl, m.endpoint, RmiMessage::Shutdown.encode());
                    }
                }
                self.publish();
                self.broadcast();
            }
            ScalingDecision::Hold => {}
        }
        // Server-side load balancing from the same reports (§4.3).
        self.rebalance();
    }

    fn rebalance(&mut self) {
        let loads: Vec<MemberLoad> = self
            .members
            .iter()
            .filter(|(_, m)| !m.draining)
            .filter_map(|(uid, m)| {
                self.reports.get(uid).map(|r| MemberLoad {
                    endpoint: m.endpoint,
                    pending: r.pending,
                })
            })
            .collect();
        if loads.len() < 2 {
            return;
        }
        // Per-member target: the configured overload capacity when set,
        // otherwise the legacy mean-pending heuristic.
        let capacity = self.config.overload_capacity().unwrap_or_else(|| {
            let total: u32 = loads.iter().map(|l| l.pending).sum();
            total.div_ceil(loads.len() as u32)
        });
        for entry in plan_redirects(&loads, capacity.max(1)) {
            let _ = self.deps.net.send(
                self.ctl,
                entry.from,
                RmiMessage::Rebalance {
                    to: entry.to,
                    count: entry.count,
                }
                .encode(),
            );
        }
    }

    fn shutdown_all(&mut self, ctl_mailbox: &Mailbox) {
        for m in self.members.values_mut() {
            m.draining = true;
            let _ = self
                .deps
                .net
                .send(self.ctl, m.endpoint, RmiMessage::Shutdown.encode());
        }
        self.publish();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !self.members.is_empty() && std::time::Instant::now() < deadline {
            while let Ok(d) = ctl_mailbox.try_recv() {
                if let Ok(RmiMessage::ShutdownReady { uid }) = RmiMessage::decode(&d.payload) {
                    self.finalize_member(uid, false);
                }
            }
            // Also reap members whose threads exited without a ready ack.
            let finished: Vec<u64> = self
                .members
                .iter()
                .filter(|(_, m)| m.join.is_finished())
                .map(|(&uid, _)| uid)
                .collect();
            for uid in finished {
                self.finalize_member(uid, false);
            }
            std::thread::sleep(TICK);
        }
        // Force-release anything left.
        let leftovers: Vec<u64> = self.members.keys().copied().collect();
        for uid in leftovers {
            self.finalize_member(uid, true);
        }
        self.deps.net.close(self.ctl);
        self.publish();
    }
}
