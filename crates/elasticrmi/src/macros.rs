//! The `elastic_class!` macro: the preprocessor, as a macro.
//!
//! The paper's ElasticRMI ships a preprocessor ("similar to rmic", §3) that
//! turns an annotated Java class into stubs, skeletons and dispatch glue. In
//! Rust the same boilerplate — match on the method name, decode the argument
//! tuple, encode the result — is mechanical enough for `macro_rules!`:
//!
//! ```
//! use elasticrmi::elastic_class;
//!
//! elastic_class! {
//!     /// A distributed counter (the doc comment lands on the struct).
//!     pub class Counter(me, ctx) {
//!         /// Adds `n` and returns the new total.
//!         method add(n: u64) -> u64 {
//!             Ok(ctx.shared::<u64>("total").update(|| 0, |t| { *t += n; *t }))
//!         }
//!         /// Reads the total.
//!         method total() -> u64 {
//!             Ok(ctx.shared::<u64>("total").get().unwrap_or(0))
//!         }
//!     }
//! }
//!
//! # use elasticrmi::{ElasticService, ServiceContext};
//! # use erm_kvstore::{Store, StoreConfig};
//! # use std::sync::{Arc, atomic::AtomicU32};
//! let mut counter = Counter::default();
//! let mut ctx = ServiceContext::new(
//!     Arc::new(Store::new(StoreConfig::default())),
//!     "Counter", 0,
//!     Arc::new(erm_sim::SystemClock::new()),
//!     Arc::new(AtomicU32::new(1)),
//! );
//! let out = counter
//!     .dispatch("add", &erm_transport::to_bytes(&7u64).unwrap(), &mut ctx)
//!     .unwrap();
//! let total: u64 = erm_transport::from_bytes(&out).unwrap();
//! assert_eq!(total, 7);
//! ```
//!
//! Each `method` body receives the service instance (`&mut`) and the
//! context (`&mut ServiceContext`) under the names given in the class header
//! (any identifiers except the keyword `self`, e.g. `(me, ctx)`),
//! and must evaluate to `Result<RetType, RemoteError>`. Unknown method names
//! produce [`crate::RemoteError::no_such_method`] automatically; argument
//! decode failures produce `IllegalArgument`, exactly like hand-written
//! services.

/// Declares a unit-struct elastic class with name-dispatched methods. See
/// the [module documentation](crate::macros) for the shape and an example.
#[macro_export]
macro_rules! elastic_class {
    (
        $(#[$meta:meta])*
        $vis:vis class $name:ident ($self_:ident, $ctx:ident) {
            $(
                $(#[$mmeta:meta])*
                method $method:ident($($arg:ident : $ty:ty),* $(,)?) -> $ret:ty $body:block
            )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        $vis struct $name;

        impl $crate::ElasticService for $name {
            fn dispatch(
                &mut self,
                method: &str,
                args: &[u8],
                ctx: &mut $crate::ServiceContext,
            ) -> ::std::result::Result<::std::vec::Vec<u8>, $crate::RemoteError> {
                match method {
                    $(
                        stringify!($method) => {
                            #[allow(unused_variables, unused_parens)]
                            let ($($arg),*): ($($ty),*) =
                                $crate::decode_args(method, args)?;
                            #[allow(unused_variables)]
                            let $self_ = &mut *self;
                            #[allow(unused_variables)]
                            let $ctx = &mut *ctx;
                            // The closure scopes `return` statements inside
                            // `$body` to the method, not `dispatch`.
                            #[allow(clippy::redundant_closure_call)]
                            let result: ::std::result::Result<$ret, $crate::RemoteError> =
                                (|| $body)();
                            $crate::encode_result(&result?)
                        }
                    )*
                    other => ::std::result::Result::Err(
                        $crate::RemoteError::no_such_method(other),
                    ),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{ElasticService, RemoteError, ServiceContext};
    use erm_kvstore::{Store, StoreConfig};
    use erm_sim::SystemClock;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    elastic_class! {
        /// Test class exercising zero, one and many arguments.
        pub class Calculator(me, ctx) {
            method zero() -> u32 {
                let _ = (me, ctx);
                Ok(0)
            }
            method double(x: i64) -> i64 {
                Ok(x * 2)
            }
            method weighted_sum(values: Vec<i64>, weight: i64) -> i64 {
                Ok(values.iter().sum::<i64>() * weight)
            }
            method stateful_add(n: u64) -> u64 {
                Ok(ctx.shared::<u64>("acc").update(|| 0, |a| { *a += n; *a }))
            }
            method fail_on_negative(x: i64) -> i64 {
                if x < 0 {
                    return Err(RemoteError::new("Negative", format!("{x}")));
                }
                Ok(x)
            }
        }
    }

    fn ctx() -> ServiceContext {
        ServiceContext::new(
            Arc::new(Store::new(StoreConfig::default())),
            "Calculator",
            0,
            Arc::new(SystemClock::new()),
            Arc::new(AtomicU32::new(1)),
        )
    }

    fn call<A: serde::Serialize, R: serde::de::DeserializeOwned>(
        svc: &mut Calculator,
        c: &mut ServiceContext,
        method: &str,
        args: &A,
    ) -> Result<R, RemoteError> {
        let bytes = svc.dispatch(method, &erm_transport::to_bytes(args).unwrap(), c)?;
        Ok(erm_transport::from_bytes(&bytes).unwrap())
    }

    #[test]
    fn zero_arg_method() {
        let mut svc = Calculator;
        let out: u32 = call(&mut svc, &mut ctx(), "zero", &()).unwrap();
        assert_eq!(out, 0);
    }

    #[test]
    fn single_arg_method() {
        let mut svc = Calculator;
        let out: i64 = call(&mut svc, &mut ctx(), "double", &21i64).unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn multi_arg_method() {
        let mut svc = Calculator;
        let out: i64 = call(
            &mut svc,
            &mut ctx(),
            "weighted_sum",
            &(vec![1i64, 2, 3], 10i64),
        )
        .unwrap();
        assert_eq!(out, 60);
    }

    #[test]
    fn context_is_available_in_bodies() {
        let mut svc = Calculator;
        let mut c = ctx();
        let a: u64 = call(&mut svc, &mut c, "stateful_add", &5u64).unwrap();
        let b: u64 = call(&mut svc, &mut c, "stateful_add", &5u64).unwrap();
        assert_eq!((a, b), (5, 10));
    }

    #[test]
    fn bodies_can_raise_remote_errors() {
        let mut svc = Calculator;
        let err = call::<_, i64>(&mut svc, &mut ctx(), "fail_on_negative", &-3i64).unwrap_err();
        assert_eq!(err.kind, "Negative");
        let ok: i64 = call(&mut svc, &mut ctx(), "fail_on_negative", &3i64).unwrap();
        assert_eq!(ok, 3);
    }

    #[test]
    fn unknown_method_is_generated_automatically() {
        let mut svc = Calculator;
        let err = svc.dispatch("nope", &[], &mut ctx()).unwrap_err();
        assert_eq!(err.kind, "NoSuchMethod");
    }

    #[test]
    fn bad_arguments_are_illegal_argument() {
        let mut svc = Calculator;
        let err = svc.dispatch("double", &[1, 2], &mut ctx()).unwrap_err();
        assert_eq!(err.kind, "IllegalArgument");
    }
}

/// Declares a typed client wrapper around a [`crate::Stub`] — the
/// client-side half of the preprocessor's output. Each declared method
/// encodes its arguments, invokes the remote method of the same name, and
/// decodes the result.
///
/// ```
/// use elasticrmi::elastic_stub;
///
/// elastic_stub! {
///     /// Typed client for the Leaderboard elastic class.
///     pub stub LeaderboardClient {
///         fn record(player: &str, points: u64) -> u64;
///         fn score_of(player: &str) -> u64;
///     }
/// }
/// // LeaderboardClient::new(stub) then client.record("ada", 30)?.
/// ```
///
/// Argument types must be `serde::Serialize`; the return type must be
/// `serde::de::DeserializeOwned`. All methods return
/// `Result<Ret, elasticrmi::RmiError>`.
#[macro_export]
macro_rules! elastic_stub {
    (
        $(#[$meta:meta])*
        $vis:vis stub $name:ident {
            $(
                $(#[$mmeta:meta])*
                fn $method:ident($($arg:ident : $ty:ty),* $(,)?) -> $ret:ty;
            )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug)]
        $vis struct $name {
            stub: $crate::Stub,
        }

        impl $name {
            /// Wraps a connected [`Stub`]($crate::Stub).
            $vis fn new(stub: $crate::Stub) -> Self {
                Self { stub }
            }

            /// The underlying untyped stub (e.g. for `stats()`).
            $vis fn stub(&self) -> &$crate::Stub {
                &self.stub
            }

            /// Mutable access to the underlying stub (e.g. timeouts).
            $vis fn stub_mut(&mut self) -> &mut $crate::Stub {
                &mut self.stub
            }

            $(
                $(#[$mmeta])*
                $vis fn $method(&mut self, $($arg: $ty),*)
                    -> ::std::result::Result<$ret, $crate::RmiError>
                {
                    self.stub.invoke(stringify!($method), &($($arg),*))
                }
            )*
        }
    };
}

#[cfg(test)]
mod stub_macro_tests {
    use crate::{ClientLb, ElasticPool, PoolConfig, PoolDeps};
    use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
    use erm_kvstore::{Store, StoreConfig};
    use erm_metrics::{MetricsHandle, TraceHandle};
    use erm_sim::SystemClock;
    use erm_transport::InProcNetwork;
    use std::sync::Arc;

    elastic_class! {
        /// Server half.
        pub class Greeter(me, ctx) {
            method greet(name: String) -> String {
                let _ = (me, ctx);
                Ok(format!("hello, {name}"))
            }
            method add(a: i64, b: i64) -> i64 {
                Ok(a + b)
            }
            method nothing() -> () {
                Ok(())
            }
        }
    }

    elastic_stub! {
        /// Client half: same method names, typed signatures.
        pub stub GreeterClient {
            fn greet(name: &str) -> String;
            fn add(a: i64, b: i64) -> i64;
            fn nothing() -> ();
        }
    }

    #[test]
    fn typed_stub_round_trips_through_a_real_pool() {
        let deps = PoolDeps {
            cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
                provisioning: LatencyModel::instant(),
                ..ClusterConfig::default()
            })),
            net: Arc::new(InProcNetwork::new()),
            store: Arc::new(Store::new(StoreConfig::default())),
            clock: Arc::new(SystemClock::new()),
            trace: TraceHandle::disabled(),
            metrics: MetricsHandle::disabled(),
        };
        let config = PoolConfig::builder("Greeter").build().unwrap();
        let mut pool =
            ElasticPool::instantiate(config, Arc::new(|| Box::new(Greeter)), deps, None).unwrap();
        let mut client = GreeterClient::new(pool.stub(ClientLb::RoundRobin).unwrap());
        client
            .stub_mut()
            .set_invocation_budget(erm_sim::SimDuration::from_secs(30));
        assert_eq!(client.greet("ada").unwrap(), "hello, ada");
        assert_eq!(client.add(40, 2).unwrap(), 42);
        client.nothing().unwrap();
        assert_eq!(client.stub().stats().invocations, 3);
        pool.shutdown();
    }
}
