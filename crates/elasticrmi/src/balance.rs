//! Server-side load balancing: the sentinel's first-fit bin-packing
//! redirection planner (paper §4.3).
//!
//! "If the sentinel notices that any skeleton is overloaded with respect to
//! others, it instructs the skeleton to redirect a portion of invocations to
//! a set of other skeletons. To decide the number of invocations that have
//! to be redirected from each overloaded skeleton, our implementation of the
//! sentinel uses the first-fit greedy bin-packing approximation algorithm."

use erm_transport::EndpointId;
use serde::{Deserialize, Serialize};

/// One member's queue depth as seen by the sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberLoad {
    /// The member's invocation endpoint.
    pub endpoint: EndpointId,
    /// Pending invocations queued at the member.
    pub pending: u32,
}

/// An instruction to move `count` queued invocations from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RedirectPlanEntry {
    /// The overloaded member shedding work.
    pub from: EndpointId,
    /// The member receiving it.
    pub to: EndpointId,
    /// How many invocations to move.
    pub count: u32,
}

/// Plans redirections that bring every member at or under `capacity` pending
/// invocations, where possible, without pushing any receiver above it.
///
/// Members above `capacity` are *items* (their excess, taken largest first —
/// first-fit-decreasing); members below it are *bins* with slack
/// `capacity - pending`, visited in endpoint order (first fit). Excess that
/// fits nowhere stays put: the pool is simply saturated, and growth is the
/// scaling engine's job, not the balancer's.
///
/// The plan is deterministic for a given input ordering-insensitively:
/// inputs are sorted internally.
///
/// # Example
///
/// ```
/// use elasticrmi::balance::{plan_redirects, MemberLoad};
/// use erm_transport::EndpointId;
///
/// let loads = [
///     MemberLoad { endpoint: EndpointId(1), pending: 10 },
///     MemberLoad { endpoint: EndpointId(2), pending: 0 },
/// ];
/// let plan = plan_redirects(&loads, 5);
/// assert_eq!(plan.len(), 1);
/// assert_eq!(plan[0].count, 5); // 1 sheds its excess of 5 onto 2
/// ```
pub fn plan_redirects(loads: &[MemberLoad], capacity: u32) -> Vec<RedirectPlanEntry> {
    // Items: overloaded members, largest excess first (FFD).
    let mut overloaded: Vec<(EndpointId, u32)> = loads
        .iter()
        .filter(|m| m.pending > capacity)
        .map(|m| (m.endpoint, m.pending - capacity))
        .collect();
    overloaded.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    // Bins: underloaded members with their slack, in endpoint order.
    let mut bins: Vec<(EndpointId, u32)> = loads
        .iter()
        .filter(|m| m.pending < capacity)
        .map(|m| (m.endpoint, capacity - m.pending))
        .collect();
    bins.sort_by_key(|&(id, _)| id);

    let mut plan = Vec::new();
    for (from, mut excess) in overloaded {
        for (to, slack) in bins.iter_mut() {
            if excess == 0 {
                break;
            }
            if *slack == 0 {
                continue;
            }
            let moved = excess.min(*slack);
            *slack -= moved;
            excess -= moved;
            plan.push(RedirectPlanEntry {
                from,
                to: *to,
                count: moved,
            });
        }
        // Leftover excess is dropped from the plan intentionally: nowhere to
        // put it.
    }
    // Internal consistency: no member may be told to shed more than the
    // excess it reported in *this* snapshot. (Applying the plan to a fresher
    // snapshot may still find less pending than planned — that staleness is
    // the applier's to tolerate, not a planner bug.)
    if cfg!(debug_assertions) {
        for m in loads {
            let shed: u64 = plan
                .iter()
                .filter(|e| e.from == m.endpoint)
                .map(|e| u64::from(e.count))
                .sum();
            debug_assert!(
                shed <= u64::from(m.pending.saturating_sub(capacity)),
                "plan sheds {shed} from {:?} with excess {}",
                m.endpoint,
                m.pending.saturating_sub(capacity)
            );
        }
    }
    plan
}

/// Total invocations a plan moves.
pub fn planned_total(plan: &[RedirectPlanEntry]) -> u64 {
    plan.iter().map(|e| u64::from(e.count)).sum()
}

/// Applies a plan to a load snapshot, returning post-redirect loads. Used by
/// tests and the simulation harness to verify/realize plans.
///
/// The snapshot need not be the one the plan was computed from: by the time
/// a plan lands, members have kept serving, so a fresher snapshot can show
/// *less* pending than the plan moves. Applying is therefore saturating —
/// a member cannot shed below zero (it redirects what it still has), and a
/// receiver's queue is clamped rather than wrapped. An earlier version did
/// unchecked `pending -= count` and underflowed on exactly that staleness.
pub fn apply_plan(loads: &[MemberLoad], plan: &[RedirectPlanEntry]) -> Vec<MemberLoad> {
    let mut out: Vec<MemberLoad> = loads.to_vec();
    for entry in plan {
        for m in out.iter_mut() {
            if m.endpoint == entry.from {
                m.pending = m.pending.saturating_sub(entry.count);
            } else if m.endpoint == entry.to {
                m.pending = m.pending.saturating_add(entry.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(pairs: &[(u64, u32)]) -> Vec<MemberLoad> {
        pairs
            .iter()
            .map(|&(id, pending)| MemberLoad {
                endpoint: EndpointId(id),
                pending,
            })
            .collect()
    }

    #[test]
    fn balanced_pool_needs_no_plan() {
        assert!(plan_redirects(&loads(&[(1, 3), (2, 4), (3, 5)]), 5).is_empty());
    }

    #[test]
    fn single_overload_spreads_to_first_fit() {
        let plan = plan_redirects(&loads(&[(1, 12), (2, 2), (3, 2)]), 5);
        // Excess 7; member 2 takes 3, member 3 takes 3, 1 keeps the rest.
        assert_eq!(planned_total(&plan), 6);
        let after = apply_plan(&loads(&[(1, 12), (2, 2), (3, 2)]), &plan);
        assert_eq!(after, loads(&[(1, 6), (2, 5), (3, 5)]));
    }

    #[test]
    fn no_receiver_exceeds_capacity() {
        let input = loads(&[(1, 30), (2, 0), (3, 4), (4, 1)]);
        let plan = plan_redirects(&input, 5);
        let after = apply_plan(&input, &plan);
        for m in after.iter().filter(|m| m.endpoint != EndpointId(1)) {
            assert!(m.pending <= 5, "receiver overloaded: {m:?}");
        }
    }

    #[test]
    fn largest_excess_is_served_first() {
        // Slack is 4 total; the member with excess 4 should claim it all.
        let input = loads(&[(1, 7), (2, 9), (3, 1)]);
        let plan = plan_redirects(&input, 5);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].from, EndpointId(2), "FFD: biggest item first");
        assert_eq!(plan[0].count, 4);
        // Remaining slack is 0, so member 1's excess stays.
        assert_eq!(planned_total(&plan), 4);
    }

    #[test]
    fn saturated_pool_produces_empty_plan() {
        let plan = plan_redirects(&loads(&[(1, 9), (2, 9), (3, 9)]), 5);
        assert!(plan.is_empty());
    }

    #[test]
    fn plan_is_input_order_insensitive() {
        let a = plan_redirects(&loads(&[(1, 12), (2, 2), (3, 2)]), 5);
        let b = plan_redirects(&loads(&[(3, 2), (1, 12), (2, 2)]), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_capacity_moves_nothing_anywhere() {
        // Everyone is an item, nobody is a bin.
        let plan = plan_redirects(&loads(&[(1, 3), (2, 4)]), 0);
        assert!(plan.is_empty());
    }

    #[test]
    fn exact_capacity_member_is_neither_item_nor_bin() {
        let plan = plan_redirects(&loads(&[(1, 5), (2, 10)]), 5);
        assert!(plan.is_empty(), "member at capacity must not receive work");
    }

    #[test]
    fn conservation_of_work() {
        let input = loads(&[(1, 20), (2, 1), (3, 0), (4, 7)]);
        let before: u32 = input.iter().map(|m| m.pending).sum();
        let plan = plan_redirects(&input, 6);
        let after = apply_plan(&input, &plan);
        let after_total: u32 = after.iter().map(|m| m.pending).sum();
        assert_eq!(
            before, after_total,
            "redirection must not create or lose work"
        );
    }

    #[test]
    fn stale_snapshot_application_saturates_instead_of_underflowing() {
        // Regression: a plan is computed from one load snapshot but applied
        // when members have already drained part of their queues. The plan
        // moves 10 off member 1, but the fresher snapshot only shows 4
        // pending — unchecked subtraction wrapped to ~4 billion here.
        let planned_from = loads(&[(1, 15), (2, 0), (3, 0)]);
        let plan = plan_redirects(&planned_from, 5);
        assert_eq!(planned_total(&plan), 10);

        let fresher = loads(&[(1, 4), (2, 0), (3, 0)]);
        let after = apply_plan(&fresher, &plan);
        assert_eq!(
            after,
            loads(&[(1, 0), (2, 5), (3, 5)]),
            "shedding clamps at zero; no wrap-around"
        );

        // The receiving side clamps too, at the top of the range.
        let near_max = loads(&[(1, 15), (2, u32::MAX - 3), (3, 0)]);
        let after = apply_plan(&near_max, &plan);
        assert_eq!(
            after[1].pending,
            u32::MAX,
            "receiver saturates, never wraps"
        );
    }
}
