//! The RMI protocol: every message that crosses endpoint boundaries.
//!
//! Serialized with the `erm-transport` wire codec. Three planes share one
//! enum so a skeleton's single mailbox serves them all:
//!
//! * **invocation plane** — [`RmiMessage::Request`]/[`RmiMessage::Response`]
//!   (and [`RmiMessage::Redirected`] from draining skeletons),
//! * **discovery plane** — stubs asking the sentinel for pool membership,
//! * **control plane** — the runtime/sentinel exchanging load reports,
//!   membership broadcasts (the JGroups substitute), rebalance directives
//!   and the two-phase shutdown handshake of §2.5.

use erm_semantics::Semantics;
use erm_sim::{SimDuration, SimTime};
use erm_transport::EndpointId;
use serde::{Deserialize, Serialize};

use crate::error::RemoteError;

/// Correlates a response with its request.
pub type CallId = u64;

/// The context an invocation carries through every hop of its life: stub →
/// wire → skeleton → (redirect →) skeleton.
///
/// Created once per `invoke` by the stub and re-sent (with a bumped
/// [`attempt`](Self::attempt)) on every retry and followed redirect, so every
/// member that sees the invocation can correlate it, enforce its deadline on
/// the shared simulation clock, and trace it end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvocationContext {
    /// Invocation id, stable across retries and redirects (unlike the
    /// per-attempt [`CallId`], which changes so stale replies can be
    /// discarded).
    pub id: u64,
    /// Absolute deadline on the simulation clock. Skeletons refuse to
    /// dispatch past it; redirected attempts inherit (never extend) it.
    pub deadline: SimTime,
    /// 1-based attempt counter, strictly increasing per resend (timeout
    /// retry, fast-failover, followed redirect) so skeletons can tell
    /// replays from new work.
    pub attempt: u32,
    /// The invoking stub's reply endpoint.
    pub origin: EndpointId,
    /// The method's declared invocation semantics (wire v4). Carried in the
    /// context so every hop — including members reached via redirect —
    /// applies the same contract without a registry lookup.
    pub semantics: Semantics,
}

impl InvocationContext {
    /// Budget left at `now` ([`SimDuration::ZERO`] once expired).
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        self.deadline.saturating_since(now)
    }

    /// Whether the deadline has passed at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.deadline
    }
}

/// Per-method statistics reported by a skeleton for one burst interval;
/// the wire form of the paper's `getMethodCallStats()` entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodStat {
    /// Invocations of this method during the burst interval.
    pub calls: u64,
    /// Mean execution latency in microseconds.
    pub mean_latency_us: u64,
}

/// One member's load, as included in sentinel state broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberState {
    /// The member's invocation endpoint.
    pub endpoint: EndpointId,
    /// The member's pool-unique id (monotonically assigned at join).
    pub uid: u64,
    /// Remote method invocations pending at the member.
    pub pending: u32,
}

/// A load report from a skeleton to the runtime/sentinel, covering one burst
/// interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// The member's uid.
    pub uid: u64,
    /// Pending (queued + executing) invocations at report time.
    pub pending: u32,
    /// Percentage of the interval the object spent executing methods
    /// (0–100), the threaded runtime's CPU-utilization analogue.
    pub busy: f32,
    /// Memory utilization percentage (0–100) as reported by the service.
    pub ram: f32,
    /// The member's `changePoolSize()` vote, if the service overrides it.
    pub fine_vote: Option<i32>,
    /// Requests rejected during the interval because their deadline had
    /// already passed on arrival — deadline pressure the pool can scale on.
    pub expired: u32,
    /// Per-method call statistics for the interval.
    pub method_stats: Vec<(String, MethodStat)>,
    /// Requests refused with `Overloaded` during the interval because the
    /// admission queue was full (wire v3).
    pub rejected: u32,
    /// Median admission-queue delay over the interval, in microseconds
    /// (wire v3).
    pub queue_delay_p50_us: u64,
    /// 99th-percentile admission-queue delay over the interval, in
    /// microseconds — the queueing-delay signal the scaling engine grows on
    /// (wire v3).
    pub queue_delay_p99_us: u64,
}

/// All messages of the ElasticRMI protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RmiMessage {
    /// Stub → skeleton: invoke `method` with encoded `args`.
    Request {
        /// Correlation id chosen by the stub (fresh per attempt).
        call: CallId,
        /// The invocation's end-to-end context (id, deadline, attempt).
        context: InvocationContext,
        /// Remote method name.
        method: String,
        /// Arguments encoded with the wire codec.
        args: Vec<u8>,
    },
    /// Skeleton → stub: the invocation outcome.
    Response {
        /// Correlation id of the request.
        call: CallId,
        /// Encoded return value, or the propagated remote exception.
        outcome: Result<Vec<u8>, RemoteError>,
        /// Whether this reply was served from the skeleton's reply cache
        /// (an `AtMostOnce` duplicate suppressed instead of re-executed,
        /// wire v4). Diagnostic only — the stub counts it but treats the
        /// outcome identically.
        replayed: bool,
    },
    /// Draining skeleton → stub: this member is leaving; retry one of
    /// `members` (paper §2.5: skeletons "redirect all further method
    /// invocations to other objects in the pool").
    Redirected {
        /// Correlation id of the refused request.
        call: CallId,
        /// Current live members to retry against.
        members: Vec<EndpointId>,
        /// The refused request's deadline, echoed back so the follow-up
        /// attempt runs under the remaining budget and never past it.
        deadline: SimTime,
    },

    /// Stub → sentinel: request pool membership ("while contacting the
    /// sentinel for the first time, the stub requests the identities of the
    /// other skeletons in the pool", §4.3).
    PoolInfoRequest,
    /// Sentinel → stub: current membership.
    PoolInfo {
        /// Monotonic membership epoch.
        epoch: u64,
        /// The sentinel's invocation endpoint.
        sentinel: EndpointId,
        /// All member invocation endpoints (sentinel included).
        members: Vec<EndpointId>,
    },

    /// Runtime → skeleton: solicit a [`LoadReport`] for the closing burst
    /// interval.
    PollLoad,
    /// Skeleton → runtime: the report.
    Load(LoadReport),
    /// Sentinel/runtime → all skeletons: periodic membership + load
    /// broadcast (the JGroups group-communication substitute, §4.3).
    StateBroadcast {
        /// Monotonic membership epoch.
        epoch: u64,
        /// Uid of the current sentinel.
        sentinel_uid: u64,
        /// All members with their last known load.
        members: Vec<MemberState>,
    },
    /// Sentinel → overloaded skeleton: redirect `count` of your queued
    /// invocations to `to` (output of the first-fit bin-packing planner).
    Rebalance {
        /// Member to offload onto.
        to: EndpointId,
        /// Number of queued invocations to hand over.
        count: u32,
    },

    /// Runtime → skeleton: begin the shutdown drain (§2.5).
    Shutdown,
    /// Skeleton → runtime: drained; safe to terminate and release my slice.
    ShutdownReady {
        /// Uid of the acknowledging member.
        uid: u64,
    },

    /// Liveness probe.
    Ping,
    /// Liveness reply.
    Pong,

    /// Skeleton → stub: the admission queue is full, so the request was
    /// refused *before* queueing (wire v3). Cheaper for everyone than
    /// letting it die by deadline: the stub's AIMD limiter backs off for
    /// `retry_after` and the pool keeps its capacity for admitted work.
    Overloaded {
        /// Correlation id of the refused request.
        call: CallId,
        /// Live admission-queue depth at rejection time.
        queue_depth: u32,
        /// Server's suggested pause before retrying this pool.
        retry_after: SimDuration,
    },
}

impl RmiMessage {
    /// Encodes for transmission.
    ///
    /// # Panics
    ///
    /// Panics only if the wire codec rejects the message, which would be a
    /// protocol-definition bug (all variants are encodable by construction).
    pub fn encode(&self) -> Vec<u8> {
        erm_transport::to_bytes(self).expect("protocol messages are always encodable")
    }

    /// Decodes a received payload.
    ///
    /// # Errors
    ///
    /// Returns the wire error for truncated or malformed payloads.
    pub fn decode(bytes: &[u8]) -> Result<Self, erm_transport::WireError> {
        erm_transport::from_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: RmiMessage) {
        let bytes = msg.encode();
        assert_eq!(RmiMessage::decode(&bytes).unwrap(), msg);
    }

    fn ctx() -> InvocationContext {
        InvocationContext {
            id: 40,
            deadline: SimTime::from_micros(1_500_000),
            attempt: 2,
            origin: EndpointId(11),
            semantics: Semantics::AtLeastOnce,
        }
    }

    #[test]
    fn invocation_plane_roundtrips() {
        roundtrip(RmiMessage::Request {
            call: 7,
            context: ctx(),
            method: "put".into(),
            args: vec![1, 2, 3],
        });
        roundtrip(RmiMessage::Request {
            call: 7,
            context: InvocationContext {
                semantics: Semantics::AtMostOnce,
                ..ctx()
            },
            method: "route".into(),
            args: vec![1],
        });
        roundtrip(RmiMessage::Response {
            call: 7,
            outcome: Ok(vec![4, 5]),
            replayed: false,
        });
        roundtrip(RmiMessage::Response {
            call: 8,
            outcome: Err(RemoteError::no_such_method("frob")),
            replayed: true,
        });
        roundtrip(RmiMessage::Redirected {
            call: 9,
            members: vec![EndpointId(1), EndpointId(2)],
            deadline: SimTime::from_micros(900_000),
        });
        roundtrip(RmiMessage::Overloaded {
            call: 10,
            queue_depth: 64,
            retry_after: SimDuration::from_micros(12_000),
        });
    }

    #[test]
    fn context_budget_arithmetic() {
        let c = ctx();
        assert!(!c.is_expired(SimTime::from_micros(1_499_999)));
        assert!(c.is_expired(SimTime::from_micros(1_500_000)));
        assert_eq!(
            c.remaining(SimTime::from_micros(1_000_000)),
            SimDuration::from_micros(500_000)
        );
        assert_eq!(
            c.remaining(SimTime::from_micros(2_000_000)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn discovery_plane_roundtrips() {
        roundtrip(RmiMessage::PoolInfoRequest);
        roundtrip(RmiMessage::PoolInfo {
            epoch: 3,
            sentinel: EndpointId(0),
            members: vec![EndpointId(0), EndpointId(1)],
        });
    }

    #[test]
    fn control_plane_roundtrips() {
        roundtrip(RmiMessage::PollLoad);
        roundtrip(RmiMessage::Load(LoadReport {
            uid: 2,
            pending: 14,
            busy: 0.83,
            ram: 0.5,
            fine_vote: Some(-1),
            expired: 3,
            method_stats: vec![(
                "get".into(),
                MethodStat {
                    calls: 1000,
                    mean_latency_us: 350,
                },
            )],
            rejected: 5,
            queue_delay_p50_us: 1_200,
            queue_delay_p99_us: 48_000,
        }));
        roundtrip(RmiMessage::StateBroadcast {
            epoch: 5,
            sentinel_uid: 0,
            members: vec![MemberState {
                endpoint: EndpointId(3),
                uid: 0,
                pending: 2,
            }],
        });
        roundtrip(RmiMessage::Rebalance {
            to: EndpointId(4),
            count: 10,
        });
        roundtrip(RmiMessage::Shutdown);
        roundtrip(RmiMessage::ShutdownReady { uid: 6 });
        roundtrip(RmiMessage::Ping);
        roundtrip(RmiMessage::Pong);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(RmiMessage::decode(&[0xff, 0xff, 0xff, 0xff, 1]).is_err());
        assert!(RmiMessage::decode(&[]).is_err());
    }
}
