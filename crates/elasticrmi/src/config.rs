//! Pool configuration: the Rust rendering of `ElasticObject`'s setters
//! (paper Fig. 3).
//!
//! The paper configures elasticity imperatively in the elastic class's
//! constructor (`setMinPoolSize(5); setCPUIncrThreshold(85); ...`); here the
//! same knobs form a validated builder. One rule from §3.3 is enforced by
//! construction: an elastic class uses exactly *one* decision mechanism —
//! choosing [`ScalingPolicy::FineGrained`] disables the CPU/RAM thresholds,
//! because the thresholds only exist inside the coarse-grained variants.

use erm_admission::{AdmissionConfig, Discipline};
use erm_semantics::{ReplyCacheConfig, SemanticsTable};
use erm_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// CPU/RAM threshold set for coarse-grained explicit elasticity (the
/// `CacheExplicit1` style of Fig. 4b). Values are utilization percentages.
///
/// Semantics (paper §3.3): thresholds that are set combine with logical OR
/// for growth; the pool grows by one object when average CPU exceeds
/// `cpu_incr` *or* average RAM exceeds `ram_incr`. It shrinks by one when
/// every configured decrease threshold is satisfied (shrinking on OR would
/// let a hot-RAM pool shed capacity because CPU is idle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Thresholds {
    /// Grow when average CPU utilization exceeds this (percent).
    pub cpu_incr: Option<f32>,
    /// Shrink-eligible when average CPU utilization is below this (percent).
    pub cpu_decr: Option<f32>,
    /// Grow when average RAM utilization exceeds this (percent).
    pub ram_incr: Option<f32>,
    /// Shrink-eligible when average RAM utilization is below this (percent).
    pub ram_decr: Option<f32>,
}

impl Thresholds {
    fn validate(&self) -> Result<(), ConfigError> {
        for (name, v) in [
            ("cpu_incr", self.cpu_incr),
            ("cpu_decr", self.cpu_decr),
            ("ram_incr", self.ram_incr),
            ("ram_decr", self.ram_decr),
        ] {
            if let Some(v) = v {
                if !(0.0..=100.0).contains(&v) {
                    return Err(ConfigError::ThresholdOutOfRange { name, value: v });
                }
            }
        }
        if let (Some(incr), Some(decr)) = (self.cpu_incr, self.cpu_decr) {
            if decr >= incr {
                return Err(ConfigError::InvertedThresholds { resource: "cpu" });
            }
        }
        if let (Some(incr), Some(decr)) = (self.ram_incr, self.ram_decr) {
            if decr >= incr {
                return Err(ConfigError::InvertedThresholds { resource: "ram" });
            }
        }
        if self.cpu_incr.is_none()
            && self.cpu_decr.is_none()
            && self.ram_incr.is_none()
            && self.ram_decr.is_none()
        {
            return Err(ConfigError::EmptyThresholds);
        }
        Ok(())
    }
}

/// Which of the paper's four decision mechanisms drives elastic scaling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScalingPolicy {
    /// Implicit elasticity (§3.2): default CPU thresholds of 90%/60%,
    /// stepping by one object per burst interval.
    Implicit,
    /// Explicit coarse-grained elasticity (§3.3): programmer-chosen CPU/RAM
    /// thresholds.
    Coarse(Thresholds),
    /// Explicit fine-grained elasticity (§3.3): members' `changePoolSize()`
    /// votes are averaged. CPU/RAM threshold scaling is disabled.
    FineGrained,
    /// Application-level decisions (§3.3, `Decider`): an external component
    /// dictates the desired pool size.
    AppLevel,
}

impl ScalingPolicy {
    /// The implicit-elasticity defaults the paper specifies: grow above 90%
    /// average CPU, shrink below 60%.
    pub const IMPLICIT_CPU_INCR: f32 = 90.0;
    /// See [`ScalingPolicy::IMPLICIT_CPU_INCR`].
    pub const IMPLICIT_CPU_DECR: f32 = 60.0;
}

/// Errors from pool-configuration validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `min_pool_size` below the paper's minimum of 2 (§4.2).
    MinTooSmall(u32),
    /// `min_pool_size` exceeds `max_pool_size`.
    MinAboveMax {
        /// Configured minimum.
        min: u32,
        /// Configured maximum.
        max: u32,
    },
    /// A burst interval of zero would make the control loop spin.
    ZeroBurstInterval,
    /// A threshold percentage outside 0–100.
    ThresholdOutOfRange {
        /// Which threshold.
        name: &'static str,
        /// Its value.
        value: f32,
    },
    /// A decrease threshold at or above its increase counterpart.
    InvertedThresholds {
        /// `"cpu"` or `"ram"`.
        resource: &'static str,
    },
    /// Coarse policy with no thresholds set at all.
    EmptyThresholds,
    /// The class name is empty (it keys shared state and locks).
    EmptyClassName,
    /// An overload capacity of zero would reject every invocation.
    ZeroOverloadCapacity,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MinTooSmall(n) => {
                write!(f, "min pool size must be at least 2, got {n}")
            }
            ConfigError::MinAboveMax { min, max } => {
                write!(f, "min pool size {min} exceeds max {max}")
            }
            ConfigError::ZeroBurstInterval => write!(f, "burst interval must be positive"),
            ConfigError::ThresholdOutOfRange { name, value } => {
                write!(f, "threshold {name} = {value} outside 0..=100")
            }
            ConfigError::InvertedThresholds { resource } => {
                write!(
                    f,
                    "{resource} decrease threshold must be below its increase threshold"
                )
            }
            ConfigError::EmptyThresholds => {
                write!(f, "coarse-grained policy requires at least one threshold")
            }
            ConfigError::EmptyClassName => write!(f, "class name must not be empty"),
            ConfigError::ZeroOverloadCapacity => {
                write!(f, "overload capacity must be positive")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated configuration of one elastic object pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    class_name: String,
    min_pool_size: u32,
    max_pool_size: u32,
    burst_interval: SimDuration,
    policy: ScalingPolicy,
    overload_capacity: Option<u32>,
    admission: Option<Discipline>,
    queue_delay_grow_above: Option<SimDuration>,
    semantics: SemanticsTable,
    reply_cache: Option<ReplyCacheConfig>,
}

impl PoolConfig {
    /// Starts a builder for the elastic class `class_name`.
    pub fn builder(class_name: impl Into<String>) -> PoolConfigBuilder {
        PoolConfigBuilder {
            class_name: class_name.into(),
            min_pool_size: 2,
            max_pool_size: 8,
            burst_interval: SimDuration::from_secs(60),
            policy: ScalingPolicy::Implicit,
            overload_capacity: None,
            admission: None,
            queue_delay_grow_above: None,
            semantics: SemanticsTable::default(),
            reply_cache: None,
        }
    }

    /// The elastic class name (keys shared fields and the class lock).
    pub fn class_name(&self) -> &str {
        &self.class_name
    }

    /// Minimum pool size (≥ 2).
    pub fn min_pool_size(&self) -> u32 {
        self.min_pool_size
    }

    /// Maximum pool size.
    pub fn max_pool_size(&self) -> u32 {
        self.max_pool_size
    }

    /// How often scaling decisions are made (default 60 s, the paper's
    /// default burst interval).
    pub fn burst_interval(&self) -> SimDuration {
        self.burst_interval
    }

    /// The scaling policy.
    pub fn policy(&self) -> ScalingPolicy {
        self.policy
    }

    /// Per-member overload capacity, if configured. When set it bounds the
    /// admission queue and serves as the sentinel balancer's per-member
    /// target; when `None` the balancer falls back to its legacy
    /// mean-pending heuristic.
    pub fn overload_capacity(&self) -> Option<u32> {
        self.overload_capacity
    }

    /// Default admission-queue bound used when admission control is on but
    /// no explicit [`PoolConfig::overload_capacity`] was configured.
    pub const DEFAULT_OVERLOAD_CAPACITY: u32 = 64;

    /// The skeletons' admission-queue configuration, or `None` when
    /// admission control is off (the legacy unbounded-FIFO behaviour).
    pub fn admission_config(&self) -> Option<AdmissionConfig> {
        self.admission.map(|discipline| AdmissionConfig {
            capacity: self
                .overload_capacity
                .unwrap_or(Self::DEFAULT_OVERLOAD_CAPACITY),
            discipline,
        })
    }

    /// Queue-delay p99 above which the scaling engine votes to grow,
    /// regardless of CPU/RAM — the queueing-delay fine metric. `None`
    /// disables the signal.
    pub fn queue_delay_grow_above(&self) -> Option<SimDuration> {
        self.queue_delay_grow_above
    }

    /// Per-method invocation semantics declared for this pool's methods
    /// (wire v4). Defaults to all-`AtLeastOnce`, the pre-v4 behavior.
    pub fn semantics(&self) -> &SemanticsTable {
        &self.semantics
    }

    /// Skeleton reply-cache tuning (grace window, entry/byte caps), or
    /// `None` for [`ReplyCacheConfig::default`].
    pub fn reply_cache_config(&self) -> Option<ReplyCacheConfig> {
        self.reply_cache
    }

    /// Clamps a desired size into `[min, max]`.
    pub fn clamp_size(&self, desired: i64) -> u32 {
        desired
            .clamp(i64::from(self.min_pool_size), i64::from(self.max_pool_size))
            .try_into()
            .expect("clamped into u32 range")
    }
}

/// Builder for [`PoolConfig`]; mirrors `ElasticObject`'s setters.
///
/// # Example
///
/// ```
/// use elasticrmi::{PoolConfig, ScalingPolicy, Thresholds};
/// use erm_sim::SimDuration;
///
/// // The paper's CacheExplicit1 (Fig. 4b): pool of 5..50, 5-minute burst
/// // interval, CPU 85/50 and RAM 70/40 thresholds.
/// let config = PoolConfig::builder("CacheExplicit1")
///     .min_pool_size(5)
///     .max_pool_size(50)
///     .burst_interval(SimDuration::from_minutes(5))
///     .policy(ScalingPolicy::Coarse(Thresholds {
///         cpu_incr: Some(85.0),
///         cpu_decr: Some(50.0),
///         ram_incr: Some(70.0),
///         ram_decr: Some(40.0),
///     }))
///     .build()?;
/// assert_eq!(config.clamp_size(100), 50);
/// # Ok::<(), elasticrmi::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PoolConfigBuilder {
    class_name: String,
    min_pool_size: u32,
    max_pool_size: u32,
    burst_interval: SimDuration,
    policy: ScalingPolicy,
    overload_capacity: Option<u32>,
    admission: Option<Discipline>,
    queue_delay_grow_above: Option<SimDuration>,
    semantics: SemanticsTable,
    reply_cache: Option<ReplyCacheConfig>,
}

impl PoolConfigBuilder {
    /// Sets the minimum pool size — `setMinPoolSize`.
    pub fn min_pool_size(mut self, n: u32) -> Self {
        self.min_pool_size = n;
        self
    }

    /// Sets the maximum pool size — `setMaxPoolSize`.
    pub fn max_pool_size(mut self, n: u32) -> Self {
        self.max_pool_size = n;
        self
    }

    /// Sets the burst interval — `setBurstInterval`.
    pub fn burst_interval(mut self, interval: SimDuration) -> Self {
        self.burst_interval = interval;
        self
    }

    /// Sets the scaling policy (implicit, coarse thresholds, fine-grained,
    /// or application-level).
    pub fn policy(mut self, policy: ScalingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the per-member overload capacity: the admission-queue bound and
    /// the balancer's per-member pending target. Unset, the balancer uses
    /// its mean-pending heuristic and the admission queue (when enabled)
    /// defaults to [`PoolConfig::DEFAULT_OVERLOAD_CAPACITY`].
    pub fn overload_capacity(mut self, capacity: u32) -> Self {
        self.overload_capacity = Some(capacity);
        self
    }

    /// Enables skeleton-side admission control with the given run-queue
    /// discipline. Off by default (unbounded FIFO, the legacy behaviour).
    pub fn admission(mut self, discipline: Discipline) -> Self {
        self.admission = Some(discipline);
        self
    }

    /// Grows the pool whenever a member's admission-queue delay p99 exceeds
    /// this over a burst interval, independent of CPU/RAM thresholds.
    pub fn queue_delay_grow_above(mut self, delay: SimDuration) -> Self {
        self.queue_delay_grow_above = Some(delay);
        self
    }

    /// Declares the pool's per-method invocation semantics (wire v4):
    /// `AtMostOnce` methods get skeleton-side duplicate suppression via the
    /// reply cache; `AtLeastOnce` (default) keeps today's retry-anywhere
    /// behavior; `Maybe` never retransmits.
    pub fn semantics(mut self, table: SemanticsTable) -> Self {
        self.semantics = table;
        self
    }

    /// Tunes the skeletons' reply cache (grace window past each deadline,
    /// entry cap, byte cap). Defaults to [`ReplyCacheConfig::default`].
    pub fn reply_cache(mut self, config: ReplyCacheConfig) -> Self {
        self.reply_cache = Some(config);
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated rule; see the
    /// variants for the full list (minimum pool size of 2, ordered
    /// thresholds, non-zero burst interval, …).
    pub fn build(self) -> Result<PoolConfig, ConfigError> {
        if self.class_name.is_empty() {
            return Err(ConfigError::EmptyClassName);
        }
        if self.min_pool_size < 2 {
            return Err(ConfigError::MinTooSmall(self.min_pool_size));
        }
        if self.min_pool_size > self.max_pool_size {
            return Err(ConfigError::MinAboveMax {
                min: self.min_pool_size,
                max: self.max_pool_size,
            });
        }
        if self.burst_interval.is_zero() {
            return Err(ConfigError::ZeroBurstInterval);
        }
        if let ScalingPolicy::Coarse(t) = &self.policy {
            t.validate()?;
        }
        if self.overload_capacity == Some(0) {
            return Err(ConfigError::ZeroOverloadCapacity);
        }
        Ok(PoolConfig {
            class_name: self.class_name,
            min_pool_size: self.min_pool_size,
            max_pool_size: self.max_pool_size,
            burst_interval: self.burst_interval,
            policy: self.policy,
            overload_capacity: self.overload_capacity,
            admission: self.admission,
            queue_delay_grow_above: self.queue_delay_grow_above,
            semantics: self.semantics,
            reply_cache: self.reply_cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PoolConfig::builder("C1").build().unwrap();
        assert_eq!(c.min_pool_size(), 2);
        assert_eq!(c.burst_interval(), SimDuration::from_secs(60));
        assert_eq!(c.policy(), ScalingPolicy::Implicit);
    }

    #[test]
    fn min_pool_size_of_one_is_rejected() {
        // Paper §4.2: "a minimum (≥ 2)".
        let err = PoolConfig::builder("C1")
            .min_pool_size(1)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::MinTooSmall(1));
    }

    #[test]
    fn min_above_max_is_rejected() {
        let err = PoolConfig::builder("C1")
            .min_pool_size(10)
            .max_pool_size(5)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::MinAboveMax { min: 10, max: 5 });
    }

    #[test]
    fn zero_burst_interval_is_rejected() {
        let err = PoolConfig::builder("C1")
            .burst_interval(SimDuration::ZERO)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroBurstInterval);
    }

    #[test]
    fn inverted_thresholds_are_rejected() {
        let err = PoolConfig::builder("C1")
            .policy(ScalingPolicy::Coarse(Thresholds {
                cpu_incr: Some(50.0),
                cpu_decr: Some(85.0),
                ..Thresholds::default()
            }))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::InvertedThresholds { resource: "cpu" });
    }

    #[test]
    fn out_of_range_threshold_is_rejected() {
        let err = PoolConfig::builder("C1")
            .policy(ScalingPolicy::Coarse(Thresholds {
                cpu_incr: Some(150.0),
                ..Thresholds::default()
            }))
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ConfigError::ThresholdOutOfRange {
                name: "cpu_incr",
                ..
            }
        ));
    }

    #[test]
    fn empty_coarse_thresholds_rejected() {
        let err = PoolConfig::builder("C1")
            .policy(ScalingPolicy::Coarse(Thresholds::default()))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyThresholds);
    }

    #[test]
    fn empty_class_name_rejected() {
        assert_eq!(
            PoolConfig::builder("").build().unwrap_err(),
            ConfigError::EmptyClassName
        );
    }

    #[test]
    fn admission_defaults_off_and_configures_on() {
        let legacy = PoolConfig::builder("C1").build().unwrap();
        assert_eq!(legacy.admission_config(), None);
        assert_eq!(legacy.overload_capacity(), None);
        assert_eq!(legacy.queue_delay_grow_above(), None);

        let tuned = PoolConfig::builder("C1")
            .admission(Discipline::Edf)
            .overload_capacity(32)
            .queue_delay_grow_above(SimDuration::from_millis(50))
            .build()
            .unwrap();
        assert_eq!(
            tuned.admission_config(),
            Some(AdmissionConfig::edf(32)),
            "explicit capacity bounds the admission queue"
        );
        assert_eq!(
            tuned.queue_delay_grow_above(),
            Some(SimDuration::from_millis(50))
        );

        let defaulted = PoolConfig::builder("C1")
            .admission(Discipline::Fifo)
            .build()
            .unwrap();
        assert_eq!(
            defaulted.admission_config(),
            Some(AdmissionConfig::fifo(PoolConfig::DEFAULT_OVERLOAD_CAPACITY))
        );
    }

    #[test]
    fn zero_overload_capacity_rejected() {
        let err = PoolConfig::builder("C1")
            .overload_capacity(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroOverloadCapacity);
    }

    #[test]
    fn clamp_size_respects_bounds() {
        let c = PoolConfig::builder("C1")
            .min_pool_size(5)
            .max_pool_size(50)
            .build()
            .unwrap();
        assert_eq!(c.clamp_size(-3), 5);
        assert_eq!(c.clamp_size(7), 7);
        assert_eq!(c.clamp_size(1_000), 50);
    }

    #[test]
    fn config_serializes() {
        let c = PoolConfig::builder("C1").build().unwrap();
        let bytes = erm_transport::to_bytes(&c).unwrap();
        let back: PoolConfig = erm_transport::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
    }
}
