//! The programming model: elastic services and their execution context.
//!
//! This is the Rust rendering of the paper's `java.elasticrmi` API
//! (Fig. 3). Java's preprocessor rewrites an elastic *class*; Rust has no
//! preprocessor, so an elastic class is a type implementing
//! [`ElasticService`]:
//!
//! * remote methods are dispatched by name with wire-encoded arguments
//!   (what the generated skeleton would do),
//! * shared instance/static fields become [`crate::state::SharedField`]s
//!   obtained from the [`ServiceContext`] (what the preprocessor's
//!   `Store.get("C1$x")` translation does),
//! * `synchronized` methods wrap their bodies in
//!   [`ServiceContext::synchronized`] (the `ERMI.lock("C1")` translation of
//!   Fig. 6), and
//! * the `changePoolSize()` fine-grained scaling hook is
//!   [`ElasticService::change_pool_size`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use erm_kvstore::{LockOwner, LockStats, Store};
use erm_sim::{SharedClock, SimDuration, SimTime};
use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::error::RemoteError;
use crate::message::{InvocationContext, MethodStat};
use crate::state::{synchronized, SharedField};

/// Statistics over one burst interval, handed to
/// [`ElasticService::change_pool_size`] — the paper's
/// `getMethodCallStats()`.
#[derive(Debug, Clone, Default)]
pub struct MethodCallStats {
    interval: SimDuration,
    methods: HashMap<String, MethodStat>,
    expired: u32,
}

impl MethodCallStats {
    /// Builds stats from per-method entries covering `interval`.
    pub fn new(interval: SimDuration, methods: HashMap<String, MethodStat>) -> Self {
        MethodCallStats {
            interval,
            methods,
            expired: 0,
        }
    }

    /// Same stats plus the interval's count of deadline-expired rejections.
    pub fn with_expired(mut self, expired: u32) -> Self {
        self.expired = expired;
        self
    }

    /// The burst interval the stats cover.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Requests this member rejected during the interval because their
    /// deadline had already passed on arrival — a direct signal of
    /// overload for `change_pool_size` implementations.
    pub fn expired(&self) -> u32 {
        self.expired
    }

    /// Invocations of `method` during the interval (0 if never called).
    pub fn calls(&self, method: &str) -> u64 {
        self.methods.get(method).map_or(0, |m| m.calls)
    }

    /// Mean invocation rate of `method` in calls/second.
    pub fn rate(&self, method: &str) -> f64 {
        let secs = self.interval.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.calls(method) as f64 / secs
        }
    }

    /// Mean execution latency of `method`, `None` if never called.
    pub fn mean_latency(&self, method: &str) -> Option<SimDuration> {
        self.methods
            .get(method)
            .filter(|m| m.calls > 0)
            .map(|m| SimDuration::from_micros(m.mean_latency_us))
    }

    /// Iterates over `(method, stat)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MethodStat)> {
        self.methods.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// Everything a service method may touch besides its own arguments: shared
/// state, distributed locks, the clock, and pool facts.
#[derive(Clone)]
pub struct ServiceContext {
    store: Arc<Store>,
    class: String,
    uid: u64,
    owner: LockOwner,
    clock: SharedClock,
    pool_size: Arc<AtomicU32>,
    lock_ttl: SimDuration,
    invocation: Option<InvocationContext>,
}

impl std::fmt::Debug for ServiceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceContext")
            .field("class", &self.class)
            .field("uid", &self.uid)
            .finish_non_exhaustive()
    }
}

impl ServiceContext {
    /// Creates a context for the member `uid` of the pool for `class`.
    pub fn new(
        store: Arc<Store>,
        class: impl Into<String>,
        uid: u64,
        clock: SharedClock,
        pool_size: Arc<AtomicU32>,
    ) -> Self {
        ServiceContext {
            store,
            class: class.into(),
            uid,
            owner: LockOwner::new(uid),
            clock,
            pool_size,
            lock_ttl: SimDuration::from_secs(30),
            invocation: None,
        }
    }

    /// Attaches (or clears) the context of the invocation about to be
    /// dispatched. Called by the skeleton around each dispatch.
    pub fn set_invocation(&mut self, invocation: Option<InvocationContext>) {
        self.invocation = invocation;
    }

    /// The context of the invocation currently executing, if the call came
    /// in over the wire (as opposed to lifecycle hooks such as `on_start`).
    pub fn invocation(&self) -> Option<&InvocationContext> {
        self.invocation.as_ref()
    }

    /// Deadline budget the current invocation has left, on the pool's
    /// clock. `None` outside a remote dispatch. A long-running method can
    /// consult this to abandon work nobody will wait for.
    pub fn remaining_budget(&self) -> Option<SimDuration> {
        self.invocation
            .as_ref()
            .map(|inv| inv.remaining(self.clock.now()))
    }

    /// Handle to shared field `name` of this elastic class. Reads and writes
    /// go through the external store, so every member of the pool observes
    /// the same value (paper §2.2).
    pub fn shared<T: Serialize + DeserializeOwned>(&self, name: &str) -> SharedField<T> {
        SharedField::new(Arc::clone(&self.store), &self.class, name)
    }

    /// Runs `body` while holding the class-wide lock — the translation of a
    /// `synchronized` elastic method (Fig. 6). Blocks (with backoff) until
    /// the lock is acquired.
    pub fn synchronized<R>(&self, body: impl FnOnce() -> R) -> R {
        synchronized(
            &self.store,
            &self.class,
            self.owner,
            self.clock.as_ref(),
            self.lock_ttl,
            body,
        )
    }

    /// Current time from the pool's clock.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// This member's pool-unique id.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// This member's lock owner identity.
    pub fn lock_owner(&self) -> LockOwner {
        self.owner
    }

    /// Current pool size — the paper's `getPoolSize()`.
    pub fn pool_size(&self) -> u32 {
        self.pool_size.load(Ordering::SeqCst)
    }

    /// Store lock-contention statistics; the raw material for fine-grained
    /// metrics like the paper's `avgLockAcqFailure`.
    pub fn lock_stats(&self) -> LockStats {
        self.store.lock_stats()
    }

    /// The underlying shared store (for application-level structures such as
    /// the DCS namespace).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }
}

/// An elastic class: the application logic hosted by every member of an
/// elastic object pool.
///
/// Implementations are instantiated once per pool member (per slice), each
/// on its own thread; per-instance fields are therefore member-local, and
/// anything that must be pool-wide goes through
/// [`ServiceContext::shared`].
///
/// # Example
///
/// ```
/// use elasticrmi::{ElasticService, MethodCallStats, RemoteError, ServiceContext};
///
/// /// A distributed counter: one shared field, one remote method.
/// struct Counter;
///
/// impl ElasticService for Counter {
///     fn dispatch(
///         &mut self,
///         method: &str,
///         _args: &[u8],
///         ctx: &mut ServiceContext,
///     ) -> Result<Vec<u8>, RemoteError> {
///         match method {
///             "increment" => {
///                 let n = ctx.shared::<u64>("count").update(|| 0, |n| { *n += 1; *n });
///                 Ok(erm_transport::to_bytes(&n).expect("u64 encodes"))
///             }
///             other => Err(RemoteError::no_such_method(other)),
///         }
///     }
/// }
/// ```
pub trait ElasticService: Send + 'static {
    /// Executes the remote method `method` with wire-encoded `args`,
    /// returning the wire-encoded result.
    ///
    /// # Errors
    ///
    /// Implementations return [`RemoteError`] for unknown methods, argument
    /// decode failures, and application-level exceptions; the error is
    /// marshalled back to the invoking stub.
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError>;

    /// The fine-grained scaling hook — the paper's `changePoolSize()`
    /// (§3.3). Called once per burst interval on every member when the pool
    /// uses [`crate::ScalingPolicy::FineGrained`]; votes are averaged across
    /// the pool. Positive means "add this many objects", negative "remove".
    /// The default (no override) abstains.
    fn change_pool_size(&mut self, stats: &MethodCallStats, ctx: &mut ServiceContext) -> i32 {
        let (_, _) = (stats, ctx);
        0
    }

    /// Memory utilization of this member in percent (0–100), consulted by
    /// the coarse-grained RAM thresholds. Defaults to 0 (RAM scaling
    /// effectively disabled unless the service reports it).
    fn ram_utilization(&self) -> f32 {
        0.0
    }

    /// Called once when the member starts, before any dispatch.
    fn on_start(&mut self, ctx: &mut ServiceContext) {
        let _ = ctx;
    }

    /// Called after the member drained, before its thread exits.
    fn on_shutdown(&mut self, ctx: &mut ServiceContext) {
        let _ = ctx;
    }
}

/// Convenience for implementing `dispatch`: decodes the argument tuple or
/// produces the paper-appropriate remote error.
///
/// # Errors
///
/// Returns [`RemoteError::bad_arguments`] when `args` does not decode as
/// `T`.
pub fn decode_args<T: DeserializeOwned>(method: &str, args: &[u8]) -> Result<T, RemoteError> {
    erm_transport::from_bytes(args).map_err(|e| RemoteError::bad_arguments(method, e))
}

/// Convenience for implementing `dispatch`: encodes a return value.
pub fn encode_result<T: Serialize>(value: &T) -> Result<Vec<u8>, RemoteError> {
    erm_transport::to_bytes(value)
        .map_err(|e| RemoteError::new("MarshalFailure", format!("return value: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use erm_kvstore::StoreConfig;
    use erm_sim::VirtualClock;

    fn context() -> ServiceContext {
        ServiceContext::new(
            Arc::new(Store::new(StoreConfig::default())),
            "C1",
            1,
            Arc::new(VirtualClock::new()),
            Arc::new(AtomicU32::new(5)),
        )
    }

    #[test]
    fn method_call_stats_expose_rates_and_latency() {
        let mut methods = HashMap::new();
        methods.insert(
            "put".to_string(),
            MethodStat {
                calls: 600,
                mean_latency_us: 2_000,
            },
        );
        let stats = MethodCallStats::new(SimDuration::from_secs(60), methods);
        assert_eq!(stats.calls("put"), 600);
        assert_eq!(stats.rate("put"), 10.0);
        assert_eq!(stats.mean_latency("put"), Some(SimDuration::from_millis(2)));
        assert_eq!(stats.calls("get"), 0);
        assert_eq!(stats.mean_latency("get"), None);
    }

    #[test]
    fn invocation_context_attaches_and_clears() {
        use erm_transport::EndpointId;

        let mut ctx = context();
        assert!(ctx.invocation().is_none());
        assert!(ctx.remaining_budget().is_none());
        let inv = InvocationContext {
            id: 1,
            deadline: SimTime::from_secs(10),
            attempt: 1,
            origin: EndpointId(9),
            semantics: erm_semantics::Semantics::AtLeastOnce,
        };
        ctx.set_invocation(Some(inv));
        assert_eq!(ctx.invocation(), Some(&inv));
        // The test clock is a VirtualClock stuck at t=0.
        assert_eq!(ctx.remaining_budget(), Some(SimDuration::from_secs(10)));
        ctx.set_invocation(None);
        assert!(ctx.invocation().is_none());
    }

    #[test]
    fn stats_carry_expired_rejections() {
        let stats = MethodCallStats::new(SimDuration::from_secs(60), HashMap::new());
        assert_eq!(stats.expired(), 0);
        assert_eq!(stats.clone().with_expired(4).expired(), 4);
    }

    #[test]
    fn context_reports_pool_facts() {
        let ctx = context();
        assert_eq!(ctx.pool_size(), 5);
        assert_eq!(ctx.uid(), 1);
        assert_eq!(ctx.lock_owner(), LockOwner::new(1));
    }

    #[test]
    fn shared_fields_are_pool_wide() {
        let ctx = context();
        let other = ctx.clone();
        ctx.shared::<u32>("x").set(&7);
        assert_eq!(other.shared::<u32>("x").get(), Some(7));
    }

    #[test]
    fn synchronized_runs_body_and_releases() {
        let ctx = context();
        let out = ctx.synchronized(|| 42);
        assert_eq!(out, 42);
        // Lock released: a different member can take it immediately.
        let other = ServiceContext::new(
            Arc::clone(ctx.store()),
            "C1",
            2,
            Arc::new(VirtualClock::new()),
            Arc::new(AtomicU32::new(5)),
        );
        assert_eq!(other.synchronized(|| 1), 1);
    }

    #[test]
    fn default_change_pool_size_abstains() {
        struct Nop;
        impl ElasticService for Nop {
            fn dispatch(
                &mut self,
                m: &str,
                _a: &[u8],
                _c: &mut ServiceContext,
            ) -> Result<Vec<u8>, RemoteError> {
                Err(RemoteError::no_such_method(m))
            }
        }
        let mut ctx = context();
        let vote = Nop.change_pool_size(&MethodCallStats::default(), &mut ctx);
        assert_eq!(vote, 0);
        assert_eq!(Nop.ram_utilization(), 0.0);
    }

    #[test]
    fn decode_args_maps_wire_errors() {
        let err = decode_args::<(u32, u32)>("put", &[1]).unwrap_err();
        assert_eq!(err.kind, "IllegalArgument");
        let ok: (u32, u32) =
            decode_args("put", &erm_transport::to_bytes(&(1u32, 2u32)).unwrap()).unwrap();
        assert_eq!(ok, (1, 2));
    }
}
