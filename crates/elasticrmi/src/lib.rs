#![warn(missing_docs)]

//! # ElasticRMI — elastic remote methods in Rust
//!
//! A reproduction of *Elastic Remote Methods* (K. R. Jayaram,
//! MIDDLEWARE 2013): remote method invocation against an **elastic object
//! pool** that grows and shrinks with its workload while clients keep
//! talking to what looks like a single remote object.
//!
//! ## The model
//!
//! * An **elastic class** is a type implementing [`ElasticService`]. The
//!   runtime instantiates it into a *pool* of objects, one per cluster slice
//!   (JVM-per-Mesos-slice in the paper), each behind a [`Skeleton`].
//! * Clients hold a [`Stub`]: a proxy for the *whole pool*. Invocations are
//!   unicast — the stub picks one member (round-robin or random), retries on
//!   failure/redirect, and only surfaces an error when the entire pool is
//!   unreachable.
//! * Shared instance/static fields live in an external strongly consistent
//!   store, accessed through [`ServiceContext::shared`];
//!   `synchronized` methods become [`ServiceContext::synchronized`].
//! * Every burst interval the runtime aggregates member load into a
//!   [`PoolSample`] and asks the [`ScalingEngine`] for a decision; policies
//!   are implicit CPU thresholds, explicit coarse-grained CPU/RAM
//!   thresholds, fine-grained `changePoolSize` votes, or an application
//!   level [`Decider`].
//! * The lowest-uid member is the **sentinel** — the pool's contact point
//!   and server-side load balancer (first-fit bin packing of pending
//!   invocations). Sentinel failure triggers re-election by lowest uid.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use elasticrmi::{
//!     ClientLb, ElasticPool, ElasticService, PoolConfig, PoolDeps, RemoteError,
//!     ServiceContext,
//! };
//! use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
//! use erm_kvstore::{Store, StoreConfig};
//! use erm_sim::SystemClock;
//! use erm_transport::InProcNetwork;
//!
//! struct Counter;
//! impl ElasticService for Counter {
//!     fn dispatch(
//!         &mut self,
//!         method: &str,
//!         _args: &[u8],
//!         ctx: &mut ServiceContext,
//!     ) -> Result<Vec<u8>, RemoteError> {
//!         match method {
//!             "increment" => {
//!                 let n = ctx.shared::<u64>("count").update(|| 0, |n| { *n += 1; *n });
//!                 elasticrmi::encode_result(&n)
//!             }
//!             other => Err(RemoteError::no_such_method(other)),
//!         }
//!     }
//! }
//!
//! let deps = PoolDeps {
//!     cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
//!         provisioning: LatencyModel::instant(),
//!         ..ClusterConfig::default()
//!     })),
//!     net: Arc::new(InProcNetwork::new()),
//!     store: Arc::new(Store::new(StoreConfig::default())),
//!     clock: Arc::new(SystemClock::new()),
//!     trace: erm_metrics::TraceHandle::disabled(),
//!     metrics: erm_metrics::MetricsHandle::disabled(),
//! };
//! let config = PoolConfig::builder("Counter").build()?;
//! let mut pool = ElasticPool::instantiate(config, Arc::new(|| Box::new(Counter)), deps, None)?;
//! let mut stub = pool.stub(ClientLb::RoundRobin)?;
//! let n: u64 = stub.invoke("increment", &())?;
//! assert_eq!(n, 1);
//! pool.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`api`] | §3.1 | [`ElasticService`], [`ServiceContext`], [`MethodCallStats`] |
//! | [`config`] | §3.2–3.3 | [`PoolConfig`], [`ScalingPolicy`], [`Thresholds`] |
//! | [`scaling`] | §2.5, §3 | [`ScalingEngine`], [`PoolSample`], [`ScalingDecision`] |
//! | [`state`] | §4.1 | [`SharedField`], `synchronized`, `C1$x` key mangling |
//! | [`balance`] | §4.3 | first-fit bin-packing redirect planner |
//! | [`stub`] / [`skeleton`] | §2.3, §4.3 | client proxy with failover; server dispatch with drain |
//! | [`pool`] | §2.4–2.5, §4.4 | runtime, sentinel election, provisioning, shutdown |
//! | [`message`] | — | the wire protocol |

pub mod api;
pub mod balance;
pub mod config;
pub mod error;
pub mod macros;
pub mod message;
pub mod pool;
pub mod registry;
pub mod scaling;
pub mod skeleton;
pub mod state;
pub mod stub;

pub use api::{decode_args, encode_result, ElasticService, MethodCallStats, ServiceContext};
pub use config::{ConfigError, PoolConfig, PoolConfigBuilder, ScalingPolicy, Thresholds};
pub use erm_admission::{AdmissionConfig, AimdConfig, AimdLimiter, Discipline};
pub use erm_semantics::{DedupStats, ReplyCache, ReplyCacheConfig, Semantics, SemanticsTable};
pub use error::{PoolError, RemoteError, RmiError};
pub use message::{InvocationContext, LoadReport, MemberState, MethodStat, RmiMessage};
pub use pool::{Decider, ElasticPool, PoolDeps, PoolStats, ServiceFactory};
pub use registry::{RegistryClient, RegistryServer};
pub use scaling::{DecisionExplanation, PoolSample, ScalingDecision, ScalingEngine};
pub use skeleton::Skeleton;
pub use state::{field_key, SharedField};
pub use stub::{ClientLb, Stub, StubStats};
