//! Error types for remote invocation and pool management.

use std::fmt;

use erm_transport::EndpointId;
use serde::{Deserialize, Serialize};

/// An application-level exception raised by a remote method and propagated
/// back to the invoking stub, mirroring how Java RMI carries remote
/// exceptions. Travels on the wire, so it is serializable and contains only
/// data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteError {
    /// Machine-readable error class (e.g. `"NoSuchMethod"`,
    /// `"IllegalArgument"`, or an application-defined kind).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

impl RemoteError {
    /// Creates an error of the given kind.
    pub fn new(kind: impl Into<String>, detail: impl Into<String>) -> Self {
        RemoteError {
            kind: kind.into(),
            detail: detail.into(),
        }
    }

    /// The error every skeleton raises for an unknown method name.
    pub fn no_such_method(method: &str) -> Self {
        RemoteError::new("NoSuchMethod", format!("no remote method named {method}"))
    }

    /// The error raised when arguments fail to decode — the remote analogue
    /// of `IllegalArgumentException`.
    pub fn bad_arguments(method: &str, why: impl fmt::Display) -> Self {
        RemoteError::new(
            "IllegalArgument",
            format!("arguments of {method} failed to decode: {why}"),
        )
    }

    /// Raised by a draining skeleton for an invocation it refuses to start;
    /// paper §2.5: pending invocations "finish execution or throw exceptions
    /// indicating abnormal termination".
    pub fn aborted_by_shutdown() -> Self {
        RemoteError::new("AbnormalTermination", "object shut down before execution")
    }

    /// Raised by a skeleton that receives a request whose deadline has
    /// already passed: the stub has given up, so dispatching would only
    /// burn pool capacity on an answer nobody is waiting for.
    pub fn deadline_exceeded(method: &str, late_by: impl fmt::Display) -> Self {
        RemoteError::new(
            "DeadlineExceeded",
            format!("{method} arrived {late_by} past its deadline"),
        )
    }

    /// Whether this is a deadline rejection.
    pub fn is_deadline_exceeded(&self) -> bool {
        self.kind == "DeadlineExceeded"
    }
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl std::error::Error for RemoteError {}

/// Errors observed by clients invoking through a stub.
#[derive(Debug, Clone, PartialEq)]
pub enum RmiError {
    /// The remote method executed and raised an application exception.
    Remote(RemoteError),
    /// Every member of the elastic pool (including the sentinel) was tried
    /// and none answered; paper §4.3: "if all attempts to communicate with
    /// the elastic object pool fail, the exception is propagated to the
    /// client application."
    PoolUnreachable {
        /// How many member endpoints were attempted.
        attempts: u32,
    },
    /// The response did not decode as the expected return type.
    Decode(String),
    /// Arguments could not be encoded.
    Encode(String),
    /// The stub has not discovered pool membership yet and the sentinel is
    /// unreachable.
    SentinelUnreachable(EndpointId),
    /// The invocation's deadline passed before any member produced an
    /// answer, across however many attempts fit in the budget.
    DeadlineExceeded {
        /// How many member endpoints were attempted before expiry.
        attempts: u32,
    },
    /// Every attempted member refused the invocation with an `Overloaded`
    /// rejection: the pool is saturated and asked the client to back off.
    Overloaded {
        /// How many member endpoints were attempted.
        attempts: u32,
        /// The smallest `retry_after` hint among the rejections.
        retry_after: erm_sim::SimDuration,
    },
    /// The stub's AIMD limiter refused the invocation locally — the
    /// concurrency window is full or a server backoff is in force — so
    /// nothing was sent.
    Throttled {
        /// How long the limiter suggests waiting before retrying.
        retry_after: erm_sim::SimDuration,
    },
}

impl fmt::Display for RmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmiError::Remote(e) => write!(f, "remote exception: {e}"),
            RmiError::PoolUnreachable { attempts } => {
                write!(f, "elastic pool unreachable after {attempts} attempts")
            }
            RmiError::Decode(why) => write!(f, "failed to decode return value: {why}"),
            RmiError::Encode(why) => write!(f, "failed to encode arguments: {why}"),
            RmiError::SentinelUnreachable(id) => write!(f, "sentinel {id} unreachable"),
            RmiError::DeadlineExceeded { attempts } => {
                write!(f, "invocation deadline exceeded after {attempts} attempts")
            }
            RmiError::Overloaded {
                attempts,
                retry_after,
            } => {
                write!(
                    f,
                    "pool overloaded after {attempts} attempts; retry in {retry_after}"
                )
            }
            RmiError::Throttled { retry_after } => {
                write!(
                    f,
                    "throttled by client-side limiter; retry in {retry_after}"
                )
            }
        }
    }
}

impl std::error::Error for RmiError {}

impl From<RemoteError> for RmiError {
    fn from(e: RemoteError) -> Self {
        RmiError::Remote(e)
    }
}

/// Errors from pool lifecycle operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PoolError {
    /// The cluster could not provide even one slice for the pool.
    NoCapacity,
    /// Cluster (Mesos) interaction failed.
    Cluster(String),
    /// The pool is already shut down.
    ShutDown,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::NoCapacity => write!(f, "cluster granted no slices for the pool"),
            PoolError::Cluster(why) => write!(f, "cluster error: {why}"),
            PoolError::ShutDown => write!(f, "elastic pool is shut down"),
        }
    }
}

impl std::error::Error for PoolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_error_roundtrips_on_wire() {
        let e = RemoteError::no_such_method("put");
        let bytes = erm_transport::to_bytes(&e).unwrap();
        let back: RemoteError = erm_transport::from_bytes(&bytes).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(RemoteError::aborted_by_shutdown()
            .to_string()
            .contains("shut down"));
        assert!(RmiError::PoolUnreachable { attempts: 4 }
            .to_string()
            .contains("4 attempts"));
        assert!(RmiError::DeadlineExceeded { attempts: 2 }
            .to_string()
            .contains("deadline"));
        assert!(RmiError::Overloaded {
            attempts: 3,
            retry_after: erm_sim::SimDuration::from_millis(40),
        }
        .to_string()
        .contains("overloaded"));
        assert!(RmiError::Throttled {
            retry_after: erm_sim::SimDuration::from_millis(5),
        }
        .to_string()
        .contains("limiter"));
        let expired = RemoteError::deadline_exceeded("put", "15ms");
        assert!(expired.is_deadline_exceeded());
        assert!(expired.to_string().contains("15ms"));
        assert!(PoolError::NoCapacity.to_string().contains("no slices"));
    }

    #[test]
    fn remote_error_converts_into_rmi_error() {
        let rmi: RmiError = RemoteError::new("X", "y").into();
        assert!(matches!(rmi, RmiError::Remote(_)));
    }
}
