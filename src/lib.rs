#![warn(missing_docs)]

//! Umbrella crate for the ElasticRMI reproduction.
//!
//! Re-exports the whole workspace so examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! * [`elasticrmi`] — the paper's contribution: elastic object pools,
//!   stubs/skeletons, scaling policies, sentinel load balancing.
//! * [`cluster`] — Mesos-like resource manager (slices, offers,
//!   provisioning latency).
//! * [`kvstore`] — HyperDex-like strongly consistent store with locks.
//! * [`transport`] — binary serde codec, in-process and TCP networks.
//! * [`sim`] — virtual clocks, event queues, deterministic RNG.
//! * [`metrics`] — SPEC agility and provisioning-interval metrics.
//! * [`workloads`] — the paper's abrupt/cyclic workload patterns.
//! * [`apps`] — Marketcetera, Hedwig, Paxos and DCS on the public API.
//! * [`harness`] — the evaluation harness regenerating every figure.
//!
//! See the repository README for a guided tour and DESIGN.md for the
//! paper-to-module map.

pub use elasticrmi;
pub use erm_apps as apps;
pub use erm_cluster as cluster;
pub use erm_harness as harness;
pub use erm_kvstore as kvstore;
pub use erm_metrics as metrics;
pub use erm_sim as sim;
pub use erm_transport as transport;
pub use erm_workloads as workloads;
