//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of `parking_lot`'s API it actually
//! uses, implemented on `std::sync`. Semantics match `parking_lot` where it
//! matters to this codebase:
//!
//! * guards are non-poisoning — a panic while holding a lock does not wedge
//!   subsequent lockers (poison is swallowed via [`PoisonError::into_inner`]);
//! * [`Condvar::wait_for`] takes `&mut MutexGuard` and returns a
//!   [`WaitTimeoutResult`], exactly like the real crate.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with non-poisoning guards.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with non-poisoning guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notification_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        let mut waited = Duration::ZERO;
        while !*done && waited < Duration::from_secs(5) {
            let r = cv.wait_for(&mut done, Duration::from_millis(50));
            if r.timed_out() {
                waited += Duration::from_millis(50);
            }
        }
        assert!(*done);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
