//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the serde *shim* traits (direct binary encode/decode,
//! see the `serde` shim crate) for plain structs and enums. Because neither
//! `syn` nor `quote` is available offline, the item is parsed by walking the
//! raw [`TokenStream`] and the output is assembled as a string; this covers
//! exactly what the workspace derives on:
//!
//! * unit, tuple and named-field structs,
//! * enums with unit, tuple and struct variants,
//! * no generic parameters and no `#[serde(...)]` attributes.
//!
//! The generated encoding is "fields in declaration order" with a `u32`
//! little-endian variant index for enums — byte-identical to what real serde
//! plus the original `erm-transport` wire serializer produced.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the serde shim's `Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives the serde shim's `Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("::core::compile_error!({msg:?});")
            .parse()
            .expect("compile_error parses"),
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive shim: generic type `{name}` is not supported"
            ));
        }
    }
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        }),
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        },
        other => return Err(format!("serde_derive shim: cannot derive for `{other}`")),
    };
    Ok(Item { name, kind })
}

/// Advances `i` past outer attributes (`#[...]`) and a visibility modifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on commas that sit outside `<...>` nesting.
/// (Brackets, braces and parens arrive as single `Group` tokens, so only
/// angle brackets need explicit tracking; `->` is recognised so the `>` of
/// a function-pointer return type is not miscounted.)
fn top_level_segments(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_joint_dash = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' if !prev_joint_dash => angle_depth += 1,
                '>' if !prev_joint_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    segments.push(std::mem::take(&mut current));
                    prev_joint_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_joint_dash = p.as_char() == '-' && p.spacing() == Spacing::Joint;
        } else {
            prev_joint_dash = false;
        }
        current.push(tok);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for segment in top_level_segments(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&segment, &mut i);
        match segment.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
        match segment.get(i + 1) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    top_level_segments(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for segment in top_level_segments(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&segment, &mut i);
        let name = match segment.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let fields = match segment.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            None => Fields::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde_derive shim: explicit discriminant on variant `{name}` is not supported"
                ))
            }
            other => {
                return Err(format!(
                    "unexpected token after variant `{name}`: {other:?}"
                ))
            }
        };
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(Fields::Unit) => String::new(),
        Kind::Struct(Fields::Tuple(n)) => (0..*n)
            .map(|i| format!("::serde::Serialize::serialize(&self.{i}, out);\n"))
            .collect(),
        Kind::Struct(Fields::Named(fields)) => fields
            .iter()
            .map(|f| format!("::serde::Serialize::serialize(&self.{f}, out);\n"))
            .collect(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (index, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => {{ ::serde::Serialize::serialize(&{index}u32, out); }}\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let pattern = binds.join(", ");
                        let writes: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b}, out);\n"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({pattern}) => {{ \
                             ::serde::Serialize::serialize(&{index}u32, out);\n{writes} }}\n"
                        ));
                    }
                    Fields::Named(fields) => {
                        let pattern = fields.join(", ");
                        let writes: String = fields
                            .iter()
                            .map(|f| format!("::serde::Serialize::serialize({f}, out);\n"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {pattern} }} => {{ \
                             ::serde::Serialize::serialize(&{index}u32, out);\n{writes} }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    let out_param = if body.is_empty() { "_out" } else { "out" };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, {out_param}: &mut ::std::vec::Vec<u8>) {{\n{body}}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let de_field = "::serde::Deserialize::deserialize(input)?";
    let (body, input_param) = match &item.kind {
        Kind::Struct(Fields::Unit) => (format!("::std::result::Result::Ok({name})\n"), "_input"),
        Kind::Struct(Fields::Tuple(n)) => {
            let fields: Vec<String> = (0..*n).map(|_| de_field.to_string()).collect();
            (
                format!("::std::result::Result::Ok({name}({}))\n", fields.join(", ")),
                if *n == 0 { "_input" } else { "input" },
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: {de_field},\n"))
                .collect();
            (
                format!("::std::result::Result::Ok({name} {{\n{inits}}})\n"),
                if fields.is_empty() { "_input" } else { "input" },
            )
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (index, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let value = match &v.fields {
                    Fields::Unit => format!("{name}::{vname}"),
                    Fields::Tuple(n) => {
                        let fields: Vec<String> = (0..*n).map(|_| de_field.to_string()).collect();
                        format!("{name}::{vname}({})", fields.join(", "))
                    }
                    Fields::Named(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| format!("{f}: {de_field},\n"))
                            .collect();
                        format!("{name}::{vname} {{\n{inits}}}")
                    }
                };
                arms.push_str(&format!(
                    "{index}u32 => ::std::result::Result::Ok({value}),\n"
                ));
            }
            (
                format!(
                    "match <u32 as ::serde::Deserialize>::deserialize(input)? {{\n\
                     {arms}\
                     other => ::std::result::Result::Err(::serde::Error::invalid(\
                         ::std::format!(\"variant index {{other}} for {name}\"))),\n\
                     }}\n"
                ),
                "input",
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize({input_param}: &mut &'de [u8]) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}}}\n\
         }}\n"
    )
}
