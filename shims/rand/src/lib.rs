//! Offline stand-in for the `rand` crate.
//!
//! Covers the API surface this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! `Range`/`RangeInclusive` of the primitive numeric types, and
//! [`Rng::sample_iter`] with [`distributions::Standard`].
//!
//! The generator is splitmix64 — not the real `StdRng`'s ChaCha12, so
//! streams differ from upstream `rand`, but every consumer in this workspace
//! only requires determinism for a fixed seed, which splitmix64 provides.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Distributions over primitive types.
pub mod distributions {
    use super::RngCore;

    /// A distribution producing values of `T`.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over a type's full range, or
    /// `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 high-quality bits -> [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }
}

use distributions::{Distribution, Standard};

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = rng.next_u64() as u128 % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = rng.next_u64() as u128 % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = Standard.sample(rng);
                self.start + (unit as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: f64 = Standard.sample(rng);
                start + (unit as $t) * (end - start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit: f64 = Standard.sample(self);
        unit < p
    }

    /// Consumes the generator into an infinite iterator of draws from
    /// `distr`.
    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        DistIter {
            distr,
            rng: self,
            _marker: PhantomData,
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Infinite iterator returned by [`Rng::sample_iter`].
#[derive(Debug, Clone)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<fn() -> T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let a = rng.gen_range(10u64..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&c));
            let d = rng.gen_range(0usize..3);
            assert!(d < 3);
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..2000 {
            match rng.gen_range(0u8..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn sample_iter_draws_from_standard() {
        use super::distributions::Standard;
        let rng = StdRng::seed_from_u64(6);
        let xs: Vec<u32> = rng.sample_iter(Standard).take(5).collect();
        assert_eq!(xs.len(), 5);
        let rng2 = StdRng::seed_from_u64(6);
        let ys: Vec<u32> = rng2.sample_iter(Standard).take(5).collect();
        assert_eq!(xs, ys);
    }
}
