//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_function`, `iter`/`iter_batched`, throughput annotation — with a
//! plain timing loop instead of criterion's statistical machinery. Each
//! bench runs a short calibration pass, then a timed pass, and prints one
//! `group/name ... time-per-iteration` line.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Entry point handed to bench functions, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.into(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim ignores sample-count tuning.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim ignores measurement-time tuning.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the per-iteration workload size (printed, not analysed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Bytes(n) => println!("{}: throughput unit = {n} bytes", self.name),
            Throughput::Elements(n) => println!("{}: throughput unit = {n} elements", self.name),
        }
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name.into()), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Per-iteration workload size for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many.
    SmallInput,
    /// Inputs are expensive to hold; batch few.
    LargeInput,
    /// One input per measured call.
    PerIteration,
}

/// Timing harness passed to each bench closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_bench(name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Calibration: find an iteration count that runs for roughly 50 ms,
    // starting from a single iteration to bound the cost of slow benches.
    let mut iterations = 1u64;
    loop {
        let mut b = Bencher {
            iterations,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(50) || iterations >= 1 << 20 {
            let per_iter = b.elapsed.as_nanos() / u128::from(iterations.max(1));
            println!("{name}: {per_iter} ns/iter ({iterations} iterations)");
            return;
        }
        let target = Duration::from_millis(50).as_nanos();
        let measured = b.elapsed.as_nanos().max(1);
        iterations = iterations
            .saturating_mul(((target / measured) as u64).clamp(2, 1024))
            .min(1 << 20);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(10).throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
