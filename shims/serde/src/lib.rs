//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates registry, so the workspace vendors a
//! minimal serialization framework under serde's name. Instead of serde's
//! format-generic `Serializer`/`Visitor` machinery, the traits here encode
//! directly into the one wire format this workspace uses (the `erm-transport`
//! binary codec):
//!
//! * fixed-width integers and floats as little-endian raw bytes
//!   (`usize`/`isize` travel as 64-bit),
//! * `bool` as one byte (0/1),
//! * `char` as a `u32` scalar value,
//! * strings as a `u32` length followed by UTF-8 bytes,
//! * `Option` as a 0/1 tag followed by the value,
//! * sequences and maps as a `u32` length followed by the elements,
//! * enum variants (including `Result`) as a `u32` variant index followed by
//!   the payload,
//! * structs and tuples as their fields in order, with no framing.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`, via the
//! `serde_derive` shim) generate field-in-order impls of these traits, so
//! every type that derived serde in the original codebase keeps the exact
//! same byte encoding.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// Decoded bytes that are not valid for the target type.
    Invalid(String),
    /// Error raised by a custom `Deserialize` impl.
    Custom(String),
}

impl Error {
    /// Convenience constructor used by generated and custom impls.
    pub fn invalid(what: impl Into<String>) -> Error {
        Error::Invalid(what.into())
    }

    /// Constructor mirroring `serde::de::Error::custom`.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error::Custom(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of input"),
            Error::Invalid(what) => write!(f, "invalid encoding: {what}"),
            Error::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// A type that can encode itself into the workspace wire format.
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn serialize(&self, out: &mut Vec<u8>);
}

/// A type that can decode itself from the workspace wire format.
///
/// `input` is advanced past the consumed bytes, so values decode in
/// sequence the same way they encode.
pub trait Deserialize<'de>: Sized {
    /// Decodes one value from the front of `input`.
    ///
    /// # Errors
    ///
    /// [`Error::UnexpectedEof`] on truncation, [`Error::Invalid`] on
    /// malformed data.
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error>;
}

/// Module mirroring `serde::ser` for imports like `serde::ser::Error`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Module mirroring `serde::de`, including the `DeserializeOwned` bound
/// used throughout the workspace.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// A value deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

/// Reads `N` bytes off the front of `input`.
fn take<const N: usize>(input: &mut &[u8]) -> Result<[u8; N], Error> {
    if input.len() < N {
        return Err(Error::UnexpectedEof);
    }
    let (head, rest) = input.split_at(N);
    *input = rest;
    Ok(head.try_into().expect("split_at guarantees length"))
}

fn take_slice<'de>(input: &mut &'de [u8], n: usize) -> Result<&'de [u8], Error> {
    if input.len() < n {
        return Err(Error::UnexpectedEof);
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

/// Writes a `u32` little-endian length prefix.
fn write_len(out: &mut Vec<u8>, len: usize) {
    let len32 = u32::try_from(len).expect("collection length exceeds u32");
    out.extend_from_slice(&len32.to_le_bytes());
}

fn read_len(input: &mut &[u8]) -> Result<usize, Error> {
    Ok(u32::from_le_bytes(take::<4>(input)?) as usize)
}

macro_rules! impl_fixed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
                Ok(<$t>::from_le_bytes(take(input)?))
            }
        }
    )*};
}
impl_fixed!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Serialize for usize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize(out);
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let v = u64::deserialize(input)?;
        usize::try_from(v).map_err(|_| Error::invalid("usize out of range"))
    }
}

impl Serialize for isize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as i64).serialize(out);
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let v = i64::deserialize(input)?;
        isize::try_from(v).map_err(|_| Error::invalid("isize out of range"))
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        match take::<1>(input)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::invalid(format!("bool byte {other}"))),
        }
    }
}

impl Serialize for char {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u32).serialize(out);
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let v = u32::deserialize(input)?;
        char::from_u32(v).ok_or_else(|| Error::invalid(format!("char scalar {v}")))
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        out.extend_from_slice(self.as_bytes());
    }
}

impl Serialize for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.as_str().serialize(out);
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        Ok(<&str>::deserialize(input)?.to_owned())
    }
}

impl<'de> Deserialize<'de> for &'de str {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let bytes = take_slice(input, len)?;
        std::str::from_utf8(bytes).map_err(|_| Error::invalid("non-UTF-8 string"))
    }
}

impl Serialize for () {
    fn serialize(&self, _out: &mut Vec<u8>) {}
}

impl<'de> Deserialize<'de> for () {
    fn deserialize(_input: &mut &'de [u8]) -> Result<Self, Error> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut Vec<u8>) {
        (**self).serialize(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (**self).serialize(out);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(input)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize(out);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        match take::<1>(input)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(input)?)),
            other => Err(Error::invalid(format!("option tag {other}"))),
        }
    }
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                0u32.serialize(out);
                v.serialize(out);
            }
            Err(e) => {
                1u32.serialize(out);
                e.serialize(out);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        match u32::deserialize(input)? {
            0 => Ok(Ok(T::deserialize(input)?)),
            1 => Ok(Err(E::deserialize(input)?)),
            other => Err(Error::invalid(format!("Result variant {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for item in self {
            item.serialize(out);
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.as_slice().serialize(out);
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        // Guard against hostile lengths: never reserve more than the input
        // could possibly hold (each element needs at least one byte, except
        // zero-sized encodings which push nothing and are capped too).
        let mut items = Vec::with_capacity(len.min(input.len()).min(4096));
        for _ in 0..len {
            items.push(T::deserialize(input)?);
        }
        Ok(items)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(input)?;
            let v = V::deserialize(input)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self, out: &mut Vec<u8>) {
        write_len(out, self.len());
        for (k, v) in self {
            k.serialize(out);
            v.serialize(out);
        }
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
        let len = read_len(input)?;
        let mut map = HashMap::new();
        for _ in 0..len {
            let k = K::deserialize(input)?;
            let v = V::deserialize(input)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self, out: &mut Vec<u8>) {
                $( self.$idx.serialize(out); )+
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(input: &mut &'de [u8]) -> Result<Self, Error> {
                Ok(($($name::deserialize(input)?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let mut out = Vec::new();
        value.serialize(&mut out);
        let mut input = out.as_slice();
        let back = T::deserialize(&mut input).expect("decodes");
        assert!(input.is_empty(), "decoder left {} bytes", input.len());
        back
    }

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(roundtrip(&0x1234_5678u32), 0x1234_5678);
        assert_eq!(roundtrip(&-42i64), -42);
        assert_eq!(roundtrip(&3.5f64), 3.5);
        assert!(roundtrip(&true));
        assert_eq!(roundtrip(&'é'), 'é');
        assert_eq!(roundtrip(&"héllo".to_string()), "héllo");
    }

    #[test]
    fn little_endian_fixed_width() {
        let mut out = Vec::new();
        0xAABBCCDDu32.serialize(&mut out);
        assert_eq!(out, vec![0xDD, 0xCC, 0xBB, 0xAA]);
    }

    #[test]
    fn string_is_length_prefixed() {
        let mut out = Vec::new();
        "hi".serialize(&mut out);
        assert_eq!(out, vec![2, 0, 0, 0, b'h', b'i']);
    }

    #[test]
    fn option_uses_tag_byte() {
        let mut out = Vec::new();
        Option::<u8>::None.serialize(&mut out);
        Some(7u8).serialize(&mut out);
        assert_eq!(out, vec![0, 1, 7]);
    }

    #[test]
    fn result_uses_u32_variant_index() {
        let mut out = Vec::new();
        Result::<u8, u8>::Ok(9).serialize(&mut out);
        assert_eq!(out, vec![0, 0, 0, 0, 9]);
        out.clear();
        Result::<u8, u8>::Err(9).serialize(&mut out);
        assert_eq!(out, vec![1, 0, 0, 0, 9]);
    }

    #[test]
    fn containers_roundtrip() {
        assert_eq!(roundtrip(&vec![1u16, 2, 3]), vec![1, 2, 3]);
        assert_eq!(
            roundtrip(&(1u8, "x".to_string(), -2i32)),
            (1, "x".to_string(), -2)
        );
        let map: BTreeMap<String, u64> = [("a".to_string(), 1u64)].into();
        assert_eq!(roundtrip(&map), map);
    }

    #[test]
    fn truncated_input_is_eof() {
        let mut out = Vec::new();
        "hello".serialize(&mut out);
        let mut short = &out[..3];
        assert_eq!(String::deserialize(&mut short), Err(Error::UnexpectedEof));
    }

    #[test]
    fn hostile_length_does_not_overallocate() {
        // Length claims 2^32-1 elements but supplies none.
        let bytes = u32::MAX.to_le_bytes();
        let mut input = &bytes[..];
        assert_eq!(
            Vec::<u64>::deserialize(&mut input),
            Err(Error::UnexpectedEof)
        );
    }
}
