//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided — the sole part of crossbeam this workspace
//! uses. Semantics the codebase relies on and this shim preserves:
//!
//! * [`channel::Sender`] is `Clone`; the channel disconnects when the last
//!   sender is dropped, after which receivers drain the queue and then see
//!   `Disconnected`;
//! * `recv_timeout` returns [`channel::RecvTimeoutError::Timeout`] on a
//!   quiet channel and `Disconnected` once closed *and* drained;
//! * `len`/`is_empty` observe the queued message count.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages waiting in the channel.
        pub fn len(&self) -> usize {
            self.shared.lock().items.len()
        }

        /// Whether the channel holds no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, wait) = self
                    .shared
                    .ready
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
                if wait.timed_out() && state.items.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Takes a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            if let Some(item) = state.items.pop_front() {
                return Ok(item);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages waiting in the channel.
        pub fn len(&self) -> usize {
            self.shared.lock().items.len()
        }

        /// Whether the channel holds no messages.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error from [`Sender::send`]: the channel has no receivers left.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error from [`Receiver::recv`]: the channel is disconnected and empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is disconnected and drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is disconnected and drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel is empty"),
                TryRecvError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn drop_of_all_senders_disconnects_after_drain() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out_while_senders_alive() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
        }
    }
}
