//! The `elastic_class!` macro in action: a tiny leaderboard service written
//! without any dispatch boilerplate — the macro plays the role of the
//! paper's rmic-like preprocessor (§3).
//!
//! Run with: `cargo run --example macro_service`

use std::sync::Arc;

use elasticrmi::{elastic_class, ClientLb, ElasticPool, PoolConfig, PoolDeps, RemoteError};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::SystemClock;
use erm_transport::InProcNetwork;

elastic_class! {
    /// A shared leaderboard: scores live in the pool's external store, so
    /// every member serves the same board.
    pub class Leaderboard(me, ctx) {
        /// Records a score; returns the player's new total.
        method record(player: String, points: u64) -> u64 {
            let _ = me;
            Ok(ctx
                .shared::<u64>(&format!("score/{player}"))
                .update(|| 0, |s| { *s += points; *s }))
        }
        /// Returns a player's total (error if unknown).
        method score_of(player: String) -> u64 {
            ctx.shared::<u64>(&format!("score/{player}"))
                .get()
                .ok_or_else(|| RemoteError::new("NoSuchPlayer", player.clone()))
        }
        /// Which pool member served this call (shows the pool at work).
        method served_by() -> u64 {
            Ok(ctx.uid())
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let config = PoolConfig::builder("Leaderboard")
        .min_pool_size(3)
        .max_pool_size(6)
        .build()?;
    let mut pool =
        ElasticPool::instantiate(config, Arc::new(|| Box::new(Leaderboard)), deps, None)?;
    let mut stub = pool.stub(ClientLb::RoundRobin)?;

    for (player, points) in [("ada", 30u64), ("alan", 20), ("ada", 25), ("grace", 50)] {
        let total: u64 = stub.invoke("record", &(player, points))?;
        let member: u64 = stub.invoke("served_by", &())?;
        println!("{player:>6} +{points:<3} -> total {total:<4} (member {member})");
    }
    let ada: u64 = stub.invoke("score_of", &"ada")?;
    assert_eq!(ada, 55);
    match stub.invoke::<_, u64>("score_of", &"nobody") {
        Err(elasticrmi::RmiError::Remote(e)) => println!("unknown player -> {e}"),
        other => panic!("expected remote error, got {other:?}"),
    }
    println!("leaderboard consistent across all {} members", pool.size());
    pool.shutdown();
    Ok(())
}
