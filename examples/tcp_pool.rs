//! The same elastic pool API over real TCP sockets.
//!
//! Everything else in the examples uses the in-process network; this one
//! hosts the pool on a `TcpHost` bound to localhost and connects the client
//! stub through a second host — two "machines" exchanging length-prefixed
//! frames, demonstrating that the middleware is transport-agnostic.
//!
//! Run with: `cargo run --example tcp_pool`

use std::sync::Arc;

use elasticrmi::{
    decode_args, encode_result, ClientLb, ElasticPool, ElasticService, PoolConfig, PoolDeps,
    RemoteError, ServiceContext, Stub,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::SystemClock;
use erm_transport::{Network, TcpHost};

/// A tiny key-value façade service (the cache of §3, reduced).
struct KvFacade;

impl ElasticService for KvFacade {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "put" => {
                let (k, v): (String, String) = decode_args(method, args)?;
                ctx.store().put(&k, v.into_bytes());
                encode_result(&true)
            }
            "get" => {
                let k: String = decode_args(method, args)?;
                let v = ctx
                    .store()
                    .get(&k)
                    .map(|c| String::from_utf8_lossy(&c.value).into_owned());
                encode_result(&v)
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "Server machine": hosts the pool's skeletons.
    let server_host = Arc::new(TcpHost::bind("127.0.0.1:0", 0)?);
    println!("server host listening on {}", server_host.local_addr());

    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: server_host.clone(),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let config = PoolConfig::builder("KvFacade")
        .min_pool_size(3)
        .max_pool_size(6)
        .build()?;
    let mut pool = ElasticPool::instantiate(config, Arc::new(|| Box::new(KvFacade)), deps, None)?;
    println!("pool up with {} members over TCP", pool.size());

    // "Client machine": its own TcpHost. One host route to the server's
    // address covers the sentinel and every member — present and future
    // (grown members live on the same host); the server learns the route
    // back to us from the advertised sender address on our frames.
    let client_host = Arc::new(TcpHost::bind("127.0.0.1:0", 1)?);
    client_host.register_host(0, server_host.local_addr());
    let (client_ep, client_mailbox) = client_host.open_endpoint();

    let net: Arc<dyn Network> = client_host.clone();
    let mut stub = Stub::connect(
        net,
        client_ep,
        client_mailbox,
        pool.sentinel(),
        ClientLb::RoundRobin,
        Arc::new(SystemClock::new()),
    )?;
    println!("stub connected across TCP; members: {:?}", stub.members());

    let _: bool = stub.invoke("put", &("greeting", "hello over tcp"))?;
    let got: Option<String> = stub.invoke("get", &"greeting")?;
    println!("get(greeting) = {got:?}");
    assert_eq!(got.as_deref(), Some("hello over tcp"));

    let missing: Option<String> = stub.invoke("get", &"absent")?;
    assert!(missing.is_none());
    println!("round-trips over real sockets verified");

    pool.shutdown();
    server_host.shutdown();
    client_host.shutdown();
    Ok(())
}
