//! The paper's running example (§3, Figs. 4–5): a distributed cache as an
//! elastic class, in all three programming styles:
//!
//! 1. **Implicit elasticity** (`CacheImplicit`, Fig. 4a): just min/max pool
//!    sizes; the runtime scales on its default CPU thresholds.
//! 2. **Explicit coarse-grained** (`CacheExplicit1`, Fig. 4b): custom burst
//!    interval and CPU/RAM thresholds.
//! 3. **Explicit fine-grained** (`CacheExplicit2`, Fig. 5): a
//!    `changePoolSize` override using cache-specific metrics (put/get
//!    latency, lock-acquisition failure rate) to veto growth under
//!    contention.
//!
//! Run with: `cargo run --example distributed_cache`

use std::sync::Arc;

use elasticrmi::{
    decode_args, encode_result, ClientLb, ElasticPool, ElasticService, MethodCallStats, PoolConfig,
    PoolDeps, RemoteError, ScalingPolicy, ServiceContext, Thresholds,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::{SimDuration, SystemClock};
use erm_transport::InProcNetwork;

/// A write-locked distributed object cache, the paper's running example.
struct Cache;

impl Cache {
    fn key(k: &str) -> String {
        format!("cache/{k}")
    }
}

impl ElasticService for Cache {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "put" => {
                let (k, v): (String, Vec<u8>) = decode_args(method, args)?;
                // Consistency during put is guarded by the class write lock
                // (the avgLockAcqFailure source in Fig. 5).
                ctx.synchronized(|| ctx.store().put(&Cache::key(&k), v));
                encode_result(&true)
            }
            "get" => {
                let k: String = decode_args(method, args)?;
                encode_result(&ctx.store().get(&Cache::key(&k)).map(|v| v.value))
            }
            "evict" => {
                let k: String = decode_args(method, args)?;
                encode_result(&ctx.store().delete(&Cache::key(&k)))
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }

    /// Fig. 5's `changePoolSize`: grow by 2 when puts are slow, unless lock
    /// contention is the cause — then adding objects only makes it worse.
    fn change_pool_size(&mut self, stats: &MethodCallStats, ctx: &mut ServiceContext) -> i32 {
        let put_latency = stats.mean_latency("put").unwrap_or(SimDuration::ZERO);
        let get_latency = stats.mean_latency("get").unwrap_or(SimDuration::ZERO);
        let slow_puts = put_latency > SimDuration::from_millis(100)
            || (get_latency > SimDuration::ZERO
                && put_latency.as_micros() > 3 * get_latency.as_micros());
        if slow_puts {
            let lock_failure_rate = ctx.lock_stats().failure_rate();
            if lock_failure_rate > 0.5 {
                return 0; // contention, not capacity: don't add objects
            }
            return 2;
        }
        0
    }
}

fn deps() -> PoolDeps {
    PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    }
}

fn exercise(pool: &ElasticPool, label: &str) -> Result<(), Box<dyn std::error::Error>> {
    let mut stub = pool.stub(ClientLb::Random { seed: 1 })?;
    for i in 0..20u32 {
        let _: bool = stub.invoke("put", &(format!("k{i}"), vec![i as u8; 16]))?;
    }
    let hit: Option<Vec<u8>> = stub.invoke("get", &"k7")?;
    let miss: Option<Vec<u8>> = stub.invoke("get", &"nope")?;
    let evicted: bool = stub.invoke("evict", &"k7")?;
    println!(
        "[{label}] pool size {}: k7 hit={} miss-is-none={} evicted={}",
        pool.size(),
        hit.is_some(),
        miss.is_none(),
        evicted
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 4a — CacheImplicit: only the pool bounds, implicit elasticity.
    let implicit = PoolConfig::builder("CacheImplicit")
        .min_pool_size(5)
        .max_pool_size(50)
        .policy(ScalingPolicy::Implicit)
        .build()?;
    let mut pool = ElasticPool::instantiate(implicit, Arc::new(|| Box::new(Cache)), deps(), None)?;
    exercise(&pool, "CacheImplicit")?;
    pool.shutdown();

    // Fig. 4b — CacheExplicit1: 5-minute bursts, CPU 85/50 OR RAM 70/40.
    let explicit1 = PoolConfig::builder("CacheExplicit1")
        .min_pool_size(5)
        .max_pool_size(50)
        .burst_interval(SimDuration::from_minutes(5))
        .policy(ScalingPolicy::Coarse(Thresholds {
            cpu_incr: Some(85.0),
            cpu_decr: Some(50.0),
            ram_incr: Some(70.0),
            ram_decr: Some(40.0),
        }))
        .build()?;
    let mut pool = ElasticPool::instantiate(explicit1, Arc::new(|| Box::new(Cache)), deps(), None)?;
    exercise(&pool, "CacheExplicit1")?;
    pool.shutdown();

    // Fig. 5 — CacheExplicit2: fine-grained changePoolSize votes.
    let explicit2 = PoolConfig::builder("CacheExplicit2")
        .min_pool_size(5)
        .max_pool_size(50)
        .policy(ScalingPolicy::FineGrained)
        .build()?;
    let mut pool = ElasticPool::instantiate(explicit2, Arc::new(|| Box::new(Cache)), deps(), None)?;
    exercise(&pool, "CacheExplicit2")?;
    pool.shutdown();

    println!("all three cache variants served traffic through the same API");
    Ok(())
}
