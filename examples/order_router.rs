//! Marketcetera-style order routing on a live elastic pool (paper §5.2),
//! with a fine-grained scaling policy and a burst of client traffic from
//! several trader threads.
//!
//! Run with: `cargo run --example order_router`

use std::sync::Arc;

use elasticrmi::{
    ClientLb, ElasticPool, PoolConfig, PoolDeps, ScalingPolicy, Semantics, SemanticsTable,
};
use erm_apps::marketcetera::{Order, OrderRouter, RouteAck, Side};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::SystemClock;
use erm_transport::InProcNetwork;
use parking_lot::Mutex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes: 32,
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };

    // `route` persists the order and bumps the routed counter — executing a
    // retried order twice would double-trade, so it is declared AtMostOnce:
    // every skeleton absorbs duplicate attempts with its reply cache and
    // replays the original acknowledgement. Status reads stay AtLeastOnce.
    let config = PoolConfig::builder(OrderRouter::CLASS)
        .min_pool_size(2)
        .max_pool_size(25)
        .policy(ScalingPolicy::FineGrained)
        .semantics(SemanticsTable::new().method("route", Semantics::AtMostOnce))
        .build()?;
    let pool = Arc::new(Mutex::new(ElasticPool::instantiate(
        config,
        Arc::new(|| Box::new(OrderRouter::new())),
        deps,
        None,
    )?));
    println!("order routing pool up with {} members", pool.lock().size());

    // Four trader threads submit orders concurrently, each with its own
    // stub (stubs are per-client, like sockets).
    let symbols = ["HPQ", "AAPL", "MSFT", "IBM", "ORCL"];
    let mut traders = Vec::new();
    for trader in 0..4u64 {
        let pool = Arc::clone(&pool);
        traders.push(std::thread::spawn(move || {
            let mut stub = pool
                .lock()
                .stub(ClientLb::Random { seed: trader })
                .expect("stub connects");
            let mut venues = std::collections::HashMap::new();
            for i in 0..50u64 {
                let order = Order {
                    id: trader * 1_000 + i,
                    symbol: symbols[(i % 5) as usize].to_string(),
                    side: if i % 2 == 0 { Side::Buy } else { Side::Sell },
                    quantity: 100 + (i as u32 % 400),
                    limit_cents: if i % 3 == 0 { None } else { Some(1_000 + i) },
                };
                let ack: RouteAck = stub.invoke("route", &order).expect("routes");
                *venues.entry(ack.venue).or_insert(0u32) += 1;
            }
            venues
        }));
    }
    let mut venue_totals = std::collections::HashMap::new();
    for t in traders {
        for (venue, n) in t.join().expect("trader thread") {
            *venue_totals.entry(venue).or_insert(0u32) += n;
        }
    }
    println!("routed 200 orders across venues: {venue_totals:?}");

    // Every order is persisted on two nodes; check one via order_status.
    let mut stub = pool.lock().stub(ClientLb::RoundRobin)?;
    let status: Option<Order> = stub.invoke("order_status", &1_007u64)?;
    println!(
        "order 1007 status: {:?}",
        status.map(|o| (o.symbol, o.quantity))
    );
    let total: u64 = stub.invoke("routed_count", &())?;
    println!("pool-wide routed_count = {total}");
    assert_eq!(total, 200);

    pool.lock().shutdown();
    Ok(())
}
