//! DCS + Paxos: two elastic pools cooperating (paper §5.2), plus an
//! application-level `Decider` (§3.3) steering one of them.
//!
//! A DCS pool provides the hierarchical namespace; a Paxos pool decides the
//! values that get written into it. The DCS pool uses an application-level
//! scaling decision (a `Decider` that sizes the pool from a target tracked
//! in shared state), demonstrating the fourth decision mechanism.
//!
//! Run with: `cargo run --example coordination_service`

use std::sync::Arc;

use elasticrmi::{ClientLb, ElasticPool, PoolConfig, PoolDeps, PoolSample, ScalingPolicy};
use erm_apps::dcs::{Dcs, ZNode};
use erm_apps::paxos::{PaxosReplica, ProposeResult};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::SystemClock;
use erm_transport::InProcNetwork;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One cluster and network host both pools; each pool gets its own
    // store (its own elastic-object state), as in the paper.
    let cluster = ClusterHandle::new(ResourceManager::new(ClusterConfig {
        nodes: 32,
        provisioning: LatencyModel::instant(),
        ..ClusterConfig::default()
    }));
    let net = Arc::new(InProcNetwork::new());
    let clock = Arc::new(SystemClock::new());
    let deps_for = |store: Arc<Store>| PoolDeps {
        cluster: cluster.clone(),
        net: net.clone(),
        store,
        clock: clock.clone(),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };

    // Paxos pool: quorum of 3, fine-grained scaling.
    let paxos_cfg = PoolConfig::builder(PaxosReplica::CLASS)
        .min_pool_size(3)
        .max_pool_size(9)
        .policy(ScalingPolicy::FineGrained)
        .build()?;
    let mut paxos = ElasticPool::instantiate(
        paxos_cfg,
        Arc::new(|| Box::new(PaxosReplica::default())),
        deps_for(Arc::new(Store::new(StoreConfig::default()))),
        None,
    )?;

    // DCS pool: sized by an application-level Decider that reads a target
    // from its own shared store (the "monitoring component" of §3.3).
    let dcs_store = Arc::new(Store::new(StoreConfig::default()));
    let decider_store = Arc::clone(&dcs_store);
    let decider = move |sample: &PoolSample| -> u32 {
        let target = decider_store
            .get("decider$target")
            .and_then(|v| erm_transport::from_bytes::<u32>(&v.value).ok())
            .unwrap_or(3);
        // Never shrink below what the current load appears to need.
        target.max(sample.pool_size.min(3))
    };
    let dcs_cfg = PoolConfig::builder(Dcs::CLASS)
        .min_pool_size(3)
        .max_pool_size(12)
        .policy(ScalingPolicy::AppLevel)
        .build()?;
    let mut dcs = ElasticPool::instantiate(
        dcs_cfg,
        Arc::new(|| Box::new(Dcs::new())),
        deps_for(Arc::clone(&dcs_store)),
        Some(Box::new(decider)),
    )?;
    println!(
        "pools up: paxos={} members, dcs={} members",
        paxos.size(),
        dcs.size()
    );

    // Reach consensus on a configuration value, then publish it in DCS.
    let mut paxos_stub = paxos.stub(ClientLb::RoundRobin)?;
    let decision: ProposeResult =
        paxos_stub.invoke("propose", &(0u64, b"replication=3".to_vec()))?;
    println!(
        "paxos instance 0 chose {:?} at ballot {} (ours: {})",
        String::from_utf8_lossy(&decision.chosen),
        decision.ballot,
        decision.was_ours
    );

    let mut dcs_stub = dcs.stub(ClientLb::RoundRobin)?;
    let _: u64 = dcs_stub.invoke("create", &("/config", Vec::<u8>::new()))?;
    let zxid: u64 = dcs_stub.invoke("create", &("/config/replication", decision.chosen.clone()))?;
    println!("wrote decided value into DCS at zxid {zxid}");

    // A competing proposer must observe the same decision (Paxos safety).
    let mut other = paxos.stub(ClientLb::RoundRobin)?;
    let competing: ProposeResult = other.invoke("propose", &(0u64, b"replication=5".to_vec()))?;
    assert_eq!(competing.chosen, decision.chosen);
    assert!(!competing.was_ours);
    println!("competing proposal correctly lost to the decided value");

    // Read the namespace back.
    let node: Option<ZNode> = dcs_stub.invoke("get", &"/config/replication")?;
    let node = node.expect("node exists");
    println!(
        "DCS /config/replication = {:?} (created at zxid {})",
        String::from_utf8_lossy(&node.data),
        node.created_zxid
    );
    let kids: Vec<String> = dcs_stub.invoke("children", &"/config")?;
    println!("children of /config: {kids:?}");

    // Ask the Decider to grow the DCS pool via shared state.
    dcs_store.put("decider$target", erm_transport::to_bytes(&5u32)?);
    println!("decider target set to 5 (pool resizes at its next burst interval)");

    paxos.shutdown();
    dcs.shutdown();
    Ok(())
}
