//! Live elasticity demo: watch an elastic pool breathe.
//!
//! Drives a pool of deliberately slow objects with a load that ramps up,
//! holds, and stops — printing the pool size, the stub's view, and the
//! cluster's slice ledger each second. The implicit CPU policy (90%/60%
//! thresholds, §3.2) does all the scaling; no votes, no thresholds to tune.
//!
//! Run with: `cargo run --release --example elasticity_demo`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use elasticrmi::{
    encode_result, ClientLb, ElasticPool, ElasticService, PoolConfig, PoolDeps, RemoteError,
    ScalingPolicy, ServiceContext,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::{SimDuration, SystemClock};
use erm_transport::InProcNetwork;

/// Each call costs ~3 ms of "CPU".
struct Grinder;
impl ElasticService for Grinder {
    fn dispatch(
        &mut self,
        method: &str,
        _args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "grind" => {
                std::thread::sleep(std::time::Duration::from_millis(3));
                encode_result(&ctx.uid())
            }
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            nodes: 16,
            slices_per_node: 1,
            // A touch of provisioning latency so joins are visible.
            provisioning: LatencyModel::Fixed(SimDuration::from_millis(300)),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };
    let cluster = deps.cluster.clone();

    let config = PoolConfig::builder("Grinder")
        .min_pool_size(2)
        .max_pool_size(10)
        .policy(ScalingPolicy::Implicit)
        .burst_interval(SimDuration::from_millis(500))
        .build()?;
    let pool = Arc::new(ElasticPool::instantiate(
        config,
        Arc::new(|| Box::new(Grinder)),
        deps,
        None,
    )?);

    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));

    // Load generators: ramp 0 -> 10 clients over the first phase.
    let mut generators = Vec::new();
    for c in 0..10u64 {
        let pool = Arc::clone(&pool);
        let stop = Arc::clone(&stop);
        let completed = Arc::clone(&completed);
        generators.push(std::thread::spawn(move || {
            // Staggered start: one extra client every 700 ms.
            std::thread::sleep(std::time::Duration::from_millis(700 * c));
            let Ok(mut stub) = pool.stub(ClientLb::Random { seed: c }) else {
                return;
            };
            stub.set_reply_timeout(erm_sim::SimDuration::from_secs(2));
            while !stop.load(Ordering::Relaxed) {
                if stub.invoke::<(), u64>("grind", &()).is_ok() {
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    println!(
        "{:>4} {:>6} {:>9} {:>12} {:>12}",
        "sec", "pool", "slices", "done", "phase"
    );
    let mut last_done = 0;
    for sec in 0..18 {
        std::thread::sleep(std::time::Duration::from_secs(1));
        if sec == 9 {
            stop.store(true, Ordering::Relaxed); // load vanishes
        }
        let done = completed.load(Ordering::Relaxed);
        println!(
            "{:>4} {:>6} {:>9} {:>12} {:>12}",
            sec,
            pool.size(),
            cluster.slices_in_use(),
            done - last_done,
            if sec < 9 { "ramping load" } else { "idle" },
        );
        last_done = done;
    }
    for g in generators {
        let _ = g.join();
    }
    println!(
        "total {} invocations; pool grew under load and shrank when idle",
        completed.load(Ordering::Relaxed)
    );
    // Shut down through the Arc (we are the last owner once generators quit).
    if let Ok(mut pool) = Arc::try_unwrap(pool) {
        pool.shutdown();
    }
    Ok(())
}
