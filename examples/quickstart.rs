//! Quickstart: a distributed counter as an elastic object pool.
//!
//! Shows the minimal end-to-end loop: implement `ElasticService`, stand up
//! the substrates (cluster, store, network, clock), instantiate the pool,
//! and invoke remote methods through a stub — the Java-RMI-simple
//! programming model the paper aims for (§2).
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use elasticrmi::{
    decode_args, encode_result, ClientLb, ElasticPool, ElasticService, PoolConfig, PoolDeps,
    RemoteError, ServiceContext,
};
use erm_cluster::{ClusterConfig, ClusterHandle, LatencyModel, ResourceManager};
use erm_kvstore::{Store, StoreConfig};
use erm_metrics::{MetricsHandle, TraceHandle};
use erm_sim::SystemClock;
use erm_transport::InProcNetwork;

/// The elastic class: a counter whose value is shared by every pool member.
struct Counter;

impl ElasticService for Counter {
    fn dispatch(
        &mut self,
        method: &str,
        args: &[u8],
        ctx: &mut ServiceContext,
    ) -> Result<Vec<u8>, RemoteError> {
        match method {
            "add" => {
                let amount: u64 = decode_args(method, args)?;
                let total = ctx.shared::<u64>("count").update(
                    || 0,
                    |n| {
                        *n += amount;
                        *n
                    },
                );
                encode_result(&(total, ctx.uid()))
            }
            "read" => encode_result(&ctx.shared::<u64>("count").get().unwrap_or(0)),
            other => Err(RemoteError::no_such_method(other)),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The substrates ElasticRMI runs on: a Mesos-like cluster, a
    // HyperDex-like store, and a network.
    let deps = PoolDeps {
        cluster: ClusterHandle::new(ResourceManager::new(ClusterConfig {
            provisioning: LatencyModel::instant(),
            ..ClusterConfig::default()
        })),
        net: Arc::new(InProcNetwork::new()),
        store: Arc::new(Store::new(StoreConfig::default())),
        clock: Arc::new(SystemClock::new()),
        trace: TraceHandle::disabled(),
        metrics: MetricsHandle::disabled(),
    };

    // An elastic pool of 3..8 Counter objects, implicit elasticity.
    let config = PoolConfig::builder("Counter")
        .min_pool_size(3)
        .max_pool_size(8)
        .build()?;
    let mut pool = ElasticPool::instantiate(config, Arc::new(|| Box::new(Counter)), deps, None)?;
    println!(
        "pool up: {} members, sentinel {}",
        pool.size(),
        pool.sentinel()
    );

    // Clients talk to the whole pool through one stub.
    let mut stub = pool.stub(ClientLb::RoundRobin)?;
    for i in 1..=9u64 {
        let (total, served_by): (u64, u64) = stub.invoke("add", &i)?;
        println!("add({i}) -> total={total} (executed by member uid {served_by})");
    }
    let total: u64 = stub.invoke("read", &())?;
    println!(
        "final total = {total} (expected {})",
        (1..=9u64).sum::<u64>()
    );
    assert_eq!(total, 45);

    println!("stub stats: {:?}", stub.stats());
    pool.shutdown();
    Ok(())
}
